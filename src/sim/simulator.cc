#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace cascache::sim {

namespace {

/// Above this node count the dense (from x attach) route table is not
/// worth its n^2 memory; routes resolve per request instead.
constexpr int kRouteCacheMaxNodes = 512;

/// Requests decoded per block in ReplayRange: large enough to amortize
/// the loop split, small enough to stay resident in L1/L2.
constexpr size_t kDecodeBlock = 1024;

/// Above this catalog size the per-store dense id→slot arrays (and the
/// memoized size-scale table) are replaced with residency-sized hashed
/// structures; 2^24 objects keeps the dense path for every historical
/// configuration.
constexpr uint32_t kDenseIdLimit = 1u << 24;

/// Fills the exchange-invariant record fields and emits. `trace` must be
/// non-null; callers keep the disabled path to one pointer test.
void EmitEvent(EventTrace* trace, const MessageContext& ctx,
               TraceEventType type, int32_t node, int32_t level,
               double value) {
  TraceEvent event;
  event.request_index = ctx.telemetry.request_index;
  event.time = ctx.now;
  event.type = type;
  event.node = node;
  event.level = level;
  event.object = ctx.object;
  event.size_bytes = ctx.size;
  event.value = value;
  trace->Emit(event);
}

}  // namespace

util::Status TierParams::Validate() const {
  if (!(ram_fraction >= 0.0 && ram_fraction <= 1.0)) {
    return util::Status::InvalidArgument(
        "tier ram_fraction must be in [0, 1]");
  }
  if (ram_hit_cost < 0.0 || disk_hit_cost < 0.0) {
    return util::Status::InvalidArgument("tier hit costs must be >= 0");
  }
  return util::Status::Ok();
}

util::Status SiblingParams::Validate() const {
  if (level < -1) {
    return util::Status::InvalidArgument(
        "sibling level must be >= 0, or -1 for every level");
  }
  if (max_probes < 0) {
    return util::Status::InvalidArgument("sibling max_probes must be >= 0");
  }
  if (probe_cost < 0.0) {
    return util::Status::InvalidArgument("sibling probe_cost must be >= 0");
  }
  return util::Status::Ok();
}

Simulator::Simulator(const Network* network, CacheSet* caches,
                     schemes::CachingScheme* scheme,
                     const SimOptions& options)
    : network_(network),
      caches_(caches),
      scheme_(scheme),
      options_(options),
      catalog_(&network->catalog()),
      mean_object_size_(network->mean_object_size()),
      server_link_delay_(network->server_link_delay()),
      server_link_hops_(network->server_link_hops()),
      scheme_observes_ascent_(scheme != nullptr && scheme->observes_ascent()),
      scheme_uses_link_costs_(scheme == nullptr || scheme->uses_link_costs()),
      scheme_plain_lru_(scheme != nullptr && scheme->plain_lru_replay()) {
  // The exchange context's invariant fields point at the simulator's
  // reused per-request buffers; the path/delay pointers are repointed at
  // the cached route by every StepDecoded.
  ctx_.path = &arena_.path;
  ctx_.link_delays = &arena_.link_delays;
  ctx_.link_costs = &arena_.link_costs;
  ctx_.server_link_delay = server_link_delay_;
  ctx_.caches = caches_;
  // Null/mismatched wiring is a programming error, not a configuration
  // one: fail fast.
  CASCACHE_CHECK(network != nullptr);
  CASCACHE_CHECK(caches != nullptr);
  CASCACHE_CHECK(caches->num_nodes() == network->num_nodes());
  CASCACHE_CHECK(scheme != nullptr);
  node_levels_.resize(static_cast<size_t>(network->num_nodes()));
  for (topology::NodeId v = 0; v < network->num_nodes(); ++v) {
    node_levels_[static_cast<size_t>(v)] = network->NodeLevel(v);
  }
  ctx_.telemetry.node_levels = node_levels_.data();
  if (network->num_nodes() <= kRouteCacheMaxNodes) {
    route_cache_.resize(static_cast<size_t>(network->num_nodes()) *
                        static_cast<size_t>(network->num_nodes()));
  }
  if (options.trace.enabled) {
    trace_ = std::make_unique<EventTrace>(options.trace);
  }
  // Option values can come straight from the CLI; defer their rejection
  // to Run() so callers get a Status instead of an abort. Direct Step()
  // drivers fall back to the default cost model meanwhile.
  if (!(options.warmup_fraction >= 0.0 && options.warmup_fraction < 1.0)) {
    init_status_ = util::Status::InvalidArgument(
        "warmup_fraction must be in [0, 1)");
    return;
  }
  if (util::Status status = options_.tier.Validate(); !status.ok()) {
    init_status_ = status;
    return;
  }
  if (util::Status status = options_.sibling.Validate(); !status.ok()) {
    init_status_ = status;
    return;
  }
  tiered_ = options_.tier.active();
  ctx_.tiered = tiered_;
  // Sibling cooperation silently disables itself on topologies without
  // sibling sets (en-route, or a branching-1 tree): every probe set would
  // be empty, so skipping the leg entirely is behavior-identical.
  sibling_on_ = options_.sibling.enabled && network->HasSiblings();
  if (options_.contention.active()) {
    if (util::Status status = options_.contention.Validate(); !status.ok()) {
      init_status_ = status;
      return;
    }
    queueing_ = std::make_unique<QueueingPlane>(network->num_nodes());
    ctx_.queueing = queueing_.get();
    ctx_.contention = &options_.contention;
    ascent_op_cost_ =
        options_.contention.lookup_cost +
        (scheme->uses_dcache() ? options_.contention.dcache_cost : 0.0);
    // A finite link also charges transmission time, and the cost-aware
    // schemes should optimize what a loaded link actually costs — feed
    // the bandwidth into the cost model before it is built.
    options_.cost_model.link_transfer_bandwidth =
        options_.contention.link_bandwidth;
  }
  auto model_or = CostModel::Create(options_.cost_model);
  if (!model_or.ok()) {
    init_status_ = model_or.status();
    return;
  }
  cost_model_ = *model_or;
  if (options.faults.active()) {
    if (util::Status status = options.faults.Validate(); !status.ok()) {
      init_status_ = status;
      return;
    }
    faults_ = std::make_unique<FaultPlane>(options.faults, network_);
  }
}

Simulator::Simulator(Network* network, schemes::CachingScheme* scheme,
                     const SimOptions& options)
    : Simulator(network, network->caches(), scheme, options) {}

util::Status Simulator::EnableCoherency(uint32_t num_objects) {
  const CoherencyParams& params = options_.coherency;
  if (params.protocol == CoherencyProtocol::kNone &&
      params.mutable_fraction == 0.0) {
    updates_.reset();  // Paper setting: nothing to track.
    return util::Status::Ok();
  }
  CASCACHE_ASSIGN_OR_RETURN(UpdateSchedule schedule,
                            UpdateSchedule::Create(num_objects, params));
  updates_ = std::make_unique<UpdateSchedule>(std::move(schedule));
  return util::Status::Ok();
}

util::Status Simulator::Run(const trace::Workload& workload,
                            uint64_t capacity_bytes_per_node) {
  return Run(workload.View(), capacity_bytes_per_node);
}

util::Status Simulator::Run(const trace::WorkloadView& view,
                            uint64_t capacity_bytes_per_node) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_between = [](Clock::time_point from,
                                  Clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  };
  const Clock::time_point t_start = Clock::now();
  CASCACHE_RETURN_IF_ERROR(init_status_);
  if (capacity_bytes_per_node == 0) {
    return util::Status::InvalidArgument("cache capacity must be > 0");
  }
  if (view.requests.empty()) {
    return util::Status::InvalidArgument("empty workload");
  }
  if (view.catalog == nullptr) {
    return util::Status::InvalidArgument("workload view without catalog");
  }
  CASCACHE_RETURN_IF_ERROR(EnableCoherency(view.catalog->num_objects()));

  CacheNodeConfig config;
  config.mode = scheme_->cache_mode();
  config.capacity_bytes = capacity_bytes_per_node;
  config.frequency = options_.frequency;
  // Two-tier nodes: the RAM front sits over the full-capacity mode store
  // (inclusive, see TierParams), so the disk tier's capacity — and with
  // it every hit/miss decision — is exactly the untiered store's.
  config.ram_fraction = options_.tier.ram_fraction;
  config.ram_capacity_bytes = options_.tier.ram_capacity_bytes;
  // Huge (procedural) catalogs: dense per-store id→slot arrays would cost
  // 4 bytes x num_objects x num_stores; switch every store to hashed
  // indexes sized by residency instead.
  const bool huge_catalog = catalog_->num_objects() > kDenseIdLimit;
  config.sparse_ids = huge_catalog;
  if (scheme_->uses_dcache()) {
    const double avg_objects =
        static_cast<double>(capacity_bytes_per_node) / mean_object_size_;
    config.dcache_entries = static_cast<size_t>(
        std::max(1.0, options_.dcache_ratio * avg_objects));
    config.dcache_policy = options_.dcache_policy;
  }
  if (options_.level_capacity_growth == 1.0 ||
      network_->MaxNodeLevel() == 0) {
    caches_->Configure(config);
  } else {
    // Distribute the same total budget across levels with capacity
    // proportional to growth^level.
    const int n = network_->num_nodes();
    const double growth = options_.level_capacity_growth;
    if (growth <= 0.0) {
      return util::Status::InvalidArgument(
          "level_capacity_growth must be > 0");
    }
    double weight_sum = 0.0;
    std::vector<double> weights(static_cast<size_t>(n));
    for (topology::NodeId v = 0; v < n; ++v) {
      weights[static_cast<size_t>(v)] =
          std::pow(growth, network_->NodeLevel(v));
      weight_sum += weights[static_cast<size_t>(v)];
    }
    const double budget =
        static_cast<double>(capacity_bytes_per_node) * static_cast<double>(n);
    std::vector<uint64_t> capacities(static_cast<size_t>(n));
    for (topology::NodeId v = 0; v < n; ++v) {
      capacities[static_cast<size_t>(v)] = std::max<uint64_t>(
          1, static_cast<uint64_t>(budget * weights[static_cast<size_t>(v)] /
                                   weight_sum));
    }
    caches_->ConfigureWithCapacities(config, capacities);
  }
  // Memoize each object's size/mean ratio: identical operands to the
  // per-request division, so latencies are bit-identical. Skipped for
  // huge catalogs (the table would be 8 bytes x num_objects); the replay
  // fallback divides inline with the same operands.
  if (!huge_catalog) {
    size_scale_table_.resize(catalog_->num_objects());
    for (trace::ObjectId o = 0; o < catalog_->num_objects(); ++o) {
      size_scale_table_[o] =
          static_cast<double>(catalog_->size(o)) / mean_object_size_;
    }
  } else {
    size_scale_table_.clear();
    size_scale_table_.shrink_to_fit();
  }
  metrics_.Reset();
  metrics_.ResetNodes(network_->num_nodes());
  if (trace_ != nullptr) trace_->Clear();
  // Forget fault streams and applied crash epochs so a repeated Run
  // replays the same chaotic schedule bit-identically.
  if (faults_ != nullptr) faults_->Reset();
  engine_.Reset();
  if (queueing_ != nullptr) queueing_->Reset();
  step_index_ = 0;

  const size_t warmup_count = static_cast<size_t>(
      options_.warmup_fraction * static_cast<double>(view.requests.size()));
  const Clock::time_point t_configured = Clock::now();
  Clock::time_point t_warmed;
  if (queueing_ != nullptr) {
    // Event-driven policy: one heap-ordered loop spans warm-up and
    // measurement (warm-up completions may land inside the measured
    // window), so the phase split is not separately timed. The bounded
    // lookahead window revisits arrivals out of order, so on_consumed
    // page release does not apply here.
    t_warmed = t_configured;
    ReplayContended(view.requests, warmup_count);
  } else {
    // Analytic replay proceeds in bounded chunks so mapped sources can
    // drop consumed pages (WorkloadView::on_consumed). Chunk bounds are
    // multiples of the decode block and the block accumulator's integer
    // counters flush associatively, so chunked results are bit-identical
    // to one whole-range ReplayRange per phase.
    constexpr size_t kReplayChunk = 2 * 1024 * 1024;
    static_assert(kReplayChunk % kDecodeBlock == 0);
    const auto replay_phase = [&](size_t begin, size_t end, bool collect) {
      for (size_t c = begin; c < end; c += kReplayChunk) {
        const size_t chunk_end = std::min(end, c + kReplayChunk);
        ReplayRange(view.requests, c, chunk_end, collect);
        if (view.on_consumed) view.on_consumed(chunk_end);
      }
    };
    replay_phase(0, warmup_count, /*collect=*/false);
    t_warmed = Clock::now();
    replay_phase(warmup_count, view.requests.size(), /*collect=*/true);
  }
  const Clock::time_point t_done = Clock::now();
  phase_times_.configure_seconds = seconds_between(t_start, t_configured);
  phase_times_.warmup_seconds = seconds_between(t_configured, t_warmed);
  phase_times_.measure_seconds = seconds_between(t_warmed, t_done);
  return util::Status::Ok();
}

void Simulator::ReplayContended(trace::RequestSpan requests,
                                size_t warmup_count) {
  // Keep a bounded window of future arrivals on the heap: enough that
  // completions interleave with every arrival that could precede them,
  // without materializing the whole trace as events up front.
  constexpr size_t kArrivalWindow = 1024;
  const size_t total = requests.size();
  size_t next = 0;
  size_t arrivals_pending = 0;
  arrival_clock_ = 0.0;
  pending_.clear();
  pending_free_.clear();
  const auto schedule_arrivals = [&] {
    while (next < total && arrivals_pending < kArrivalWindow) {
      engine_.Schedule(EventKind::kArrival,
                       NextArrivalTime(requests[next].time), next);
      ++next;
      ++arrivals_pending;
    }
  };
  schedule_arrivals();
  Event ev;
  while (engine_.Pop(&ev)) {
    if (ev.kind == EventKind::kArrival) {
      --arrivals_pending;
      const trace::Request& request = requests[ev.payload];
      DecodedRequest decoded;
      decoded.object = request.object;
      decoded.size = catalog_->size(request.object);
      decoded.server = catalog_->server(request.object);
      decoded.requester = RequesterFor(request.client);
      decoded.attach = network_->ServerAttach(decoded.server);
      decoded.time = ev.time;  // The clock's (possibly ramped) arrival time.
      const bool collect = ev.payload >= warmup_count;
      StepOutcome out;
      StepDecoded(decoded, collect, nullptr, &out);
      uint64_t slot;
      if (!pending_free_.empty()) {
        slot = pending_free_.back();
        pending_free_.pop_back();
      } else {
        slot = pending_.size();
        pending_.emplace_back();
      }
      pending_[slot].metrics = out.metrics;
      pending_[slot].collect = collect;
      engine_.Schedule(EventKind::kCompletion, out.completion_time, slot);
      schedule_arrivals();
    } else {
      // Completion: the response reached the requester — record in
      // delivery order, which is where contended runs differ from the
      // analytic scan.
      PendingCompletion& done = pending_[ev.payload];
      if (done.collect) metrics_.Record(done.metrics);
      pending_free_.push_back(ev.payload);
    }
  }
}

double Simulator::NextArrivalTime(double trace_time) {
  const ContentionParams& cp = options_.contention;
  if (cp.arrival_rate <= 0.0) {
    // Trace-timed arrivals, monotonized so an unsorted trace cannot
    // schedule into the committed past.
    if (trace_time > arrival_clock_) arrival_clock_ = trace_time;
    return arrival_clock_;
  }
  // Open-loop ramp: rate(t) = arrival_rate * (1 + arrival_ramp * t),
  // stepped per arrival, optionally modulated by the diurnal sinusoid.
  // Validate() guarantees a positive rate (amplitude < 1).
  double rate = cp.arrival_rate * (1.0 + cp.arrival_ramp * arrival_clock_);
  if (cp.arrival_diurnal_amplitude > 0.0) {
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    rate *= 1.0 + cp.arrival_diurnal_amplitude *
                      std::sin(kTwoPi * arrival_clock_ /
                               cp.arrival_diurnal_period);
  }
  arrival_clock_ += 1.0 / rate;
  return arrival_clock_;
}

void Simulator::ReplayRange(trace::RequestSpan requests, size_t begin,
                            size_t end, bool collect) {
  // Decode-then-replay in blocks: the decode loop touches only the trace
  // and the catalog's flat arrays (branch-free, prefetch-friendly), the
  // replay loop only decoded integers. Ordering is exactly the trace
  // order, so results are bit-identical to one-at-a-time Step() calls.
  std::vector<DecodedRequest>& batch = arena_.batch;
  // Collected exchanges stream into the open block: the order-sensitive
  // per-request arithmetic (Welford stats, queue-wait sum) hits the
  // collector exactly as Record() would — bit-identical — while the
  // integer counters accumulate in block_stats_ and write back once per
  // range (MetricsCollector::FlushBlock) instead of once per request.
  if (collect) block_stats_ = {};
  for (size_t block = begin; block < end; block += kDecodeBlock) {
    const size_t block_end = std::min(end, block + kDecodeBlock);
    batch.clear();
    for (size_t i = block; i < block_end; ++i) {
      const trace::Request& request = requests[i];
      DecodedRequest decoded;
      decoded.object = request.object;
      decoded.size = catalog_->size(request.object);
      decoded.server = catalog_->server(request.object);
      decoded.requester = RequesterFor(request.client);
      decoded.attach = network_->ServerAttach(decoded.server);
      decoded.time = request.time;
      batch.push_back(decoded);
    }
    // Software-pipelined replay: resolve every request's route up front
    // (RouteFor fills its dense cache slot lazily and is idempotent, so
    // the early calls are invisible to results), then prefetch each
    // request's per-hop probe entries a few requests ahead of its replay.
    // The per-hop Contains chain is a string of dependent loads over ~MBs
    // of node index tables; issuing them early overlaps the misses with
    // the preceding requests' work. Skipped without the dense route table
    // (fallback re-resolves every call) and under fault injection (routes
    // may detour).
    CacheNode* const nodes = caches_->nodes_data();
    const bool pipeline = faults_ == nullptr && !route_cache_.empty();
    if (pipeline) {
      batch_routes_.clear();
      for (const DecodedRequest& d : batch) {
        batch_routes_.push_back(&RouteFor(d.requester, d.attach, d.server));
      }
    }
    // Far enough ahead to cover a cache-miss round trip, near enough that
    // the lines still sit in cache when the request replays.
    constexpr size_t kPrefetchAhead = 16;
    for (size_t j = 0; j < batch.size(); ++j) {
      if (!pipeline) {
        StepDecoded(batch[j], collect);
        continue;
      }
      const size_t p = j + kPrefetchAhead;
      if (p < batch.size()) {
        const DecodedRequest& ahead = batch[p];
        for (topology::NodeId v : batch_routes_[p]->nodes) {
          nodes[v].PrefetchProbe(ahead.object);
          // Under the plain-LRU rule a miss inserts (and usually evicts)
          // at every path node, so warm the victim entries too.
          if (scheme_plain_lru_) nodes[v].PrefetchLruVictim();
        }
      }
      StepDecoded(batch[j], collect, batch_routes_[j]);
    }
  }
  if (collect) metrics_.FlushBlock(block_stats_);
}

void Simulator::Step(const trace::Request& request, bool collect) {
  DecodedRequest decoded;
  decoded.object = request.object;
  decoded.size = catalog_->size(request.object);
  decoded.server = catalog_->server(request.object);
  decoded.requester = RequesterFor(request.client);
  decoded.attach = network_->ServerAttach(decoded.server);
  decoded.time = request.time;
  // One-shot block: FinishRequest's analytic exit records through the
  // open block, so a direct Step() opens one around the single exchange.
  block_stats_ = {};
  StepDecoded(decoded, collect);
  metrics_.FlushBlock(block_stats_);
}

topology::NodeId Simulator::RequesterFor(trace::ClientId client) {
  if (static_cast<size_t>(client) >= requester_cache_.size()) {
    requester_cache_.resize(static_cast<size_t>(client) + 1, -1);
  }
  topology::NodeId& slot = requester_cache_[static_cast<size_t>(client)];
  if (slot < 0) slot = network_->RequesterNode(client);
  return slot;
}

const Simulator::CachedRoute& Simulator::RouteFor(topology::NodeId from,
                                                  topology::NodeId attach,
                                                  trace::ServerId server) {
  CachedRoute* route;
  if (route_cache_.empty()) {
    route = &fallback_route_;
    route->filled = false;  // Always re-resolve without the dense table.
  } else {
    route = &route_cache_[static_cast<size_t>(from) *
                              static_cast<size_t>(network_->num_nodes()) +
                          static_cast<size_t>(attach)];
  }
  if (!route->filled) {
    route->nodes = network_->PathToServer(from, server);
    route->delays.clear();
    route->delays.reserve(route->nodes.size());
    for (size_t i = 0; i + 1 < route->nodes.size(); ++i) {
      route->delays.push_back(
          network_->LinkDelay(route->nodes[i], route->nodes[i + 1]));
    }
    // Left-to-right running sums: each entry extends the previous one by
    // a single addition, the same sequence the per-request loop performed,
    // so latencies computed from the prefix are bit-identical.
    route->delay_prefix.clear();
    route->delay_prefix.reserve(route->nodes.size());
    double acc = 0.0;
    route->delay_prefix.push_back(acc);
    for (double d : route->delays) {
      acc += d;
      route->delay_prefix.push_back(acc);
    }
    route->filled = true;
  }
  return *route;
}

uint32_t Simulator::Ascend(MessageContext& ctx) {
  // Version the client receives; downstream copies inherit it (a stale
  // serving copy propagates its stale version). All freshness checks use
  // ctx.now, the attempt time: after fault-plane retries it trails the
  // request's nominal time (and equals it otherwise).
  uint32_t served_version =
      updates_ == nullptr ? 0 : updates_->VersionAt(ctx.object, ctx.now);

  // The request message climbs the distribution tree toward the server.
  // At each hop: coherency admission first — under a protocol, expired or
  // invalidated copies are discarded and the request continues upstream;
  // under kNone a stale copy is served (and counted) — then, if the hop
  // cannot serve, the scheme's ascent handler piggybacks its state. A
  // hop whose cache process is down (fault plane) is transparent: it can
  // serve nothing and its piggyback entry is lost.
  const std::vector<topology::NodeId>& path = *ctx.path;
  NodeCounters* const counters = ctx.telemetry.node_counters;
  EventTrace* const trace = ctx.telemetry.trace;
  CacheNode* const nodes = caches_->nodes_data();
  const bool faults_active = faults_ != nullptr;

  // Fast path: no coherency schedule, no fault plane, no event sink and a
  // locally-deciding scheme — the per-hop work collapses to a cache probe
  // plus counters, with served_version pinned at 0 (no update schedule).
  // This is the exact subset of the general loop below those features
  // would leave untaken, so results are bit-identical.
  if (!faults_active && updates_ == nullptr && trace == nullptr &&
      !scheme_observes_ascent_ && queueing_ == nullptr && !tiered_ &&
      !sibling_on_) {
    for (size_t i = 0; i < path.size(); ++i) {
      const topology::NodeId node_id = path[i];
      if (nodes[node_id].Contains(ctx.object)) {
        ctx.response.hit_index = static_cast<int>(i);
        if (counters != nullptr) {
          ++counters[node_id].hits;
          counters[node_id].bytes_served += ctx.size;
        }
        return served_version;
      }
      if (counters != nullptr) ++counters[node_id].misses;
    }
    ctx.response.hit_index = -1;
    return served_version;
  }

  for (size_t i = 0; i < path.size(); ++i) {
    const topology::NodeId node_id = path[i];
    CacheNode* node = &nodes[node_id];
    const int32_t level = node_levels_[static_cast<size_t>(node_id)];
    const bool down = faults_active && arena_.node_down[i] != 0;
    // Event-driven replay: the hop's lookup (+ d-cache probe) is service
    // demand on the node's bounded queue. A full queue refuses the whole
    // request — it ends here, at the refusing hop. A down hop serves
    // nothing and charges nothing (its queue is not running).
    if (queueing_ != nullptr && !down && ascent_op_cost_ > 0.0) {
      const QueueingPlane::Admission adm =
          queueing_->AdmitOp(node_id, ctx.now, ascent_op_cost_,
                             options_.contention.node_queue_capacity);
      if (adm.shed) {
        ctx.response.shed = true;
        ctx.response.hit_index = -1;
        ctx.metrics->hops = static_cast<int>(i);
        if (counters != nullptr) {
          ++counters[node_id].sheds;
          if (adm.depth > counters[node_id].max_queue_depth) {
            counters[node_id].max_queue_depth = adm.depth;
          }
        }
        if (trace != nullptr) {
          EmitEvent(trace, ctx, TraceEventType::kShed, node_id, level,
                    static_cast<double>(adm.depth));
        }
        return served_version;
      }
      ctx.metrics->queue_wait += adm.wait;
      ctx.now += adm.wait + ascent_op_cost_;
      if (counters != nullptr &&
          adm.depth > counters[node_id].max_queue_depth) {
        counters[node_id].max_queue_depth = adm.depth;
      }
      if (trace != nullptr) {
        EmitEvent(trace, ctx, TraceEventType::kQueueDepth, node_id, level,
                  static_cast<double>(adm.depth));
      }
    }
    bool servable = !down && node->Contains(ctx.object);
    // Degraded-node fault class: the hop's disk is out. A tiered node
    // keeps serving what its RAM tier holds (coherency admission is
    // skipped — the copy metadata lives with the disk store, which the
    // node cannot touch); any copy only the disk holds is unavailable
    // (tiered or not), recorded as a disk-degraded decision. Contents are
    // preserved: recovery resumes with the pre-outage store.
    bool ram_only = false;
    if (servable && faults_active && arena_.disk_down[i] != 0) [[unlikely]] {
      if (node->tiered() && node->ram()->Contains(ctx.object)) {
        ram_only = true;
      } else {
        servable = false;
        ctx.RecordDiskDegraded(static_cast<int>(i));
      }
    }
    if (servable && !ram_only && updates_ != nullptr) {
      const CacheNode::CopyStamp* stamp = node->FindCopy(ctx.object);
      // Copies can only enter a cache through StampCopy'd insertions
      // within this run; treat a missing stamp (e.g. test-injected copy)
      // as fresh-at-time-0.
      const double fetch_time = stamp != nullptr ? stamp->fetch_time : 0.0;
      const uint32_t version = stamp != nullptr ? stamp->version : 0;
      const CoherencyProtocol protocol = options_.coherency.protocol;
      if (protocol == CoherencyProtocol::kTtl &&
          ctx.now - fetch_time > options_.coherency.ttl) {
        node->EraseObject(ctx.object);
        ++ctx.metrics->copies_expired;
        servable = false;
        if (counters != nullptr) ++counters[node_id].expirations;
        if (trace != nullptr) {
          EmitEvent(trace, ctx, TraceEventType::kExpired, node_id, level,
                    ctx.now - fetch_time);
        }
      } else {
        const uint32_t current = updates_->VersionAt(ctx.object, ctx.now);
        if (protocol == CoherencyProtocol::kInvalidation &&
            version < current) {
          node->EraseObject(ctx.object);
          ++ctx.metrics->copies_invalidated;
          servable = false;
          if (counters != nullptr) ++counters[node_id].invalidations;
          if (trace != nullptr) {
            EmitEvent(trace, ctx, TraceEventType::kInvalidated, node_id,
                      level, static_cast<double>(current - version));
          }
        } else {
          if (version < current) {
            ctx.metrics->stale_hit = true;
            if (counters != nullptr) ++counters[node_id].stale_serves;
            if (trace != nullptr) {
              EmitEvent(trace, ctx, TraceEventType::kStaleServe, node_id,
                        level, static_cast<double>(current - version));
            }
          }
          served_version = version;
        }
      }
    }
    if (servable) {
      // Which tier serves: the RAM front when it holds the object (or is
      // all the node has left during a disk outage), else the disk store
      // with promotion into RAM (inclusive: the disk copy stays).
      if (tiered_ && node->tiered()) [[unlikely]] {
        CacheNode::TierServe tier;
        if (ram_only) {
          tier.ram_hit = node->ram()->Touch(ctx.object);
        } else {
          tier = node->ServeTiered(ctx.object, ctx.size);
        }
        ctx.RecordTierServe(node_id, tier);
        ChargeTierServe(ctx, node_id, tier.ram_hit);
      }
      ctx.response.hit_index = static_cast<int>(i);
      if (counters != nullptr) {
        ++counters[node_id].hits;
        counters[node_id].bytes_served += ctx.size;
      }
      if (trace != nullptr) {
        EmitEvent(trace, ctx, TraceEventType::kHit, node_id, level,
                  static_cast<double>(i));
      }
      return served_version;
    }
    if (counters != nullptr) ++counters[node_id].misses;
    if (trace != nullptr) {
      EmitEvent(trace, ctx, TraceEventType::kMiss, node_id, level,
                static_cast<double>(i));
    }
    // Sibling cooperation: a live hop that missed locally probes its
    // siblings before letting the request ascend. On a sibling serve the
    // exchange ends here — hit_index is this hop, the descent below it is
    // identical to a local hit, and this hop contributes no piggyback
    // entry (exactly as if it had served), so scheme state stays
    // hop-aligned.
    if (sibling_on_ && !down &&
        TrySiblings(ctx, i, &served_version)) {
      return served_version;
    }
    if (scheme_observes_ascent_) {
      ctx.request.hop = static_cast<int>(i);
      if (faults_active) {
        // A down hop contributes no piggyback entry; an up hop's entry
        // may still be lost in transit. Either way the scheme sees
        // piggyback_lost for this hop only and applies its documented
        // fallback (DESIGN.md §10).
        const bool lost =
            down || faults_->AscentLoss(ctx.telemetry.request_index,
                                        static_cast<int>(i));
        if (lost) {
          ctx.request.piggyback_lost = true;
          ctx.RecordDegraded(static_cast<int>(i));
        }
        scheme_->OnAscend(ctx, static_cast<int>(i));
        ctx.request.piggyback_lost = false;
      } else {
        scheme_->OnAscend(ctx, static_cast<int>(i));
      }
    }
  }
  ctx.response.hit_index = -1;
  if (trace != nullptr) {
    // The origin serve is not node-scoped: node/level are -1.
    EmitEvent(trace, ctx, TraceEventType::kOrigin, -1, -1,
              static_cast<double>(path.size()) - 1.0 + server_link_hops_);
  }
  return served_version;
}

bool Simulator::TrySiblings(MessageContext& ctx, size_t hop,
                            uint32_t* served_version) {
  const std::vector<topology::NodeId>& path = *ctx.path;
  const topology::NodeId node_id = path[hop];
  const SiblingParams& sp = options_.sibling;
  if (sp.level >= 0 &&
      node_levels_[static_cast<size_t>(node_id)] != sp.level) {
    return false;
  }
  const std::vector<topology::NodeId>& siblings = network_->Siblings(node_id);
  if (siblings.empty()) return false;
  CacheNode* const nodes = caches_->nodes_data();
  const bool faults_active = faults_ != nullptr;
  int probes = 0;
  for (topology::NodeId sib : siblings) {
    if (sp.max_probes > 0 && probes >= sp.max_probes) break;
    // The probe ordinal (count of probes this request already sent,
    // across hops) keys the sibling-loss stream, so losses are
    // query-order independent.
    const int probe_ordinal = ctx.metrics->sibling_probes;
    ++probes;
    ctx.RecordSiblingProbe(static_cast<int>(hop), sib);
    scheme_->OnSiblingProbe(ctx, static_cast<int>(hop), sib);
    ctx.request.payload_bytes += sp.probe_bytes;
    if (queueing_ != nullptr && sp.probe_cost > 0.0) {
      // Probes are tiny control messages: they wait behind the sibling's
      // backlog and serve, but are never shed (capacity 0 = unbounded).
      const QueueingPlane::Admission adm =
          queueing_->AdmitOp(sib, ctx.now, sp.probe_cost, 0);
      ctx.metrics->queue_wait += adm.wait;
      ctx.now += adm.wait + sp.probe_cost;
    }
    if (faults_active) {
      // A crashed sibling answers nothing; a lost probe (or lost reply)
      // reads as a miss, and the probing hop falls back to the ascent.
      if (faults_->NodeDown(sib, ctx.now)) continue;
      if (faults_->SiblingLoss(ctx.telemetry.request_index, probe_ordinal)) {
        ctx.RecordDegraded(static_cast<int>(hop));
        continue;
      }
    }
    CacheNode* sib_node = &nodes[sib];
    if (!sib_node->Contains(ctx.object)) continue;
    bool ram_only = false;
    if (faults_active && faults_->DiskDown(sib, ctx.now)) {
      // Degraded sibling: only its RAM tier can answer. A disk-only copy
      // reads as a plain miss to the prober (no disk-degraded decision is
      // recorded — the degradation is off this request's path).
      if (sib_node->tiered() && sib_node->ram()->Contains(ctx.object)) {
        ram_only = true;
      } else {
        continue;
      }
    }
    uint32_t version = 0;
    if (updates_ != nullptr) {
      // Probes never mutate and never stale-serve: an expired or stale
      // sibling copy is skipped (not erased) — only a fresh copy crosses
      // the sibling leg.
      const CacheNode::CopyStamp* stamp = sib_node->FindCopy(ctx.object);
      const double fetch_time = stamp != nullptr ? stamp->fetch_time : 0.0;
      version = stamp != nullptr ? stamp->version : 0;
      if (options_.coherency.protocol == CoherencyProtocol::kTtl &&
          ctx.now - fetch_time > options_.coherency.ttl) {
        continue;
      }
      if (version < updates_->VersionAt(ctx.object, ctx.now)) continue;
    }
    if (tiered_ && sib_node->tiered()) {
      CacheNode::TierServe tier;
      if (ram_only) {
        tier.ram_hit = sib_node->ram()->Touch(ctx.object);
      } else {
        tier = sib_node->ServeTiered(ctx.object, ctx.size);
      }
      ctx.RecordTierServe(sib, tier);
      ChargeTierServe(ctx, sib, tier.ram_hit);
    }
    ctx.response.hit_index = static_cast<int>(hop);
    ctx.response.served_by_sibling = true;
    ctx.response.sibling = sib;
    // The hit reply carries the protocol header back across the leg.
    ctx.response.payload_bytes += sp.probe_bytes;
    ctx.RecordSiblingServe(static_cast<int>(hop), sib);
    *served_version = version;
    return true;
  }
  return false;
}

void Simulator::ChargeTierServe(MessageContext& ctx, topology::NodeId node_id,
                                bool ram_hit) {
  const double cost =
      ram_hit ? options_.tier.ram_hit_cost : options_.tier.disk_hit_cost;
  if (cost <= 0.0) return;
  if (queueing_ == nullptr) {
    ctx.tier_service += cost;
    return;
  }
  // The serve is already committed when the tier is consulted, so the
  // admission must not refuse (capacity 0 = unbounded): it waits behind
  // the node's backlog and serves.
  const QueueingPlane::Admission adm =
      queueing_->AdmitOp(node_id, ctx.now, cost, 0);
  ctx.metrics->queue_wait += adm.wait;
  ctx.now += adm.wait + cost;
  NodeCounters* const counters = ctx.telemetry.node_counters;
  if (counters != nullptr && adm.depth > counters[node_id].max_queue_depth) {
    counters[node_id].max_queue_depth = adm.depth;
  }
}

void Simulator::StepDecoded(const DecodedRequest& request, bool collect,
                            const CachedRoute* route_in,
                            StepOutcome* outcome) {
  const trace::ObjectId object = request.object;
  const uint64_t size = request.size;
  const topology::NodeId requester = request.requester;

  if (scheme_plain_lru_ && faults_ == nullptr && updates_ == nullptr &&
      trace_ == nullptr && queueing_ == nullptr && !tiered_ &&
      !sibling_on_) {
    // Fused plain-LRU exchange, entirely on local state: ascent probes,
    // the serve decision and the descent placements in one pass over the
    // path, skipping the MessageContext wiring the general pipeline
    // needs for its scheme/coherency/trace hooks. The per-node order of
    // operations, the latency arithmetic (prefix sums + memoized size
    // scale) and the accounting (statement-for-statement the
    // RecordPlacement/RecordPlacementRejected bodies with a null trace —
    // see message.h) are exactly the general path's, so results are
    // bit-identical; PipelineEquivalenceTest holds both paths to the
    // same golden results.
    const CachedRoute& route =
        route_in != nullptr
            ? *route_in
            : RouteFor(requester, request.attach, request.server);
    const std::vector<topology::NodeId>& path = route.nodes;
    const double* const delay_prefix = route.delay_prefix.data();
    ++step_index_;  // Keeps the trace-sampling key monotone.
    NodeCounters* const counters =
        collect ? metrics_.node_counters_data() : nullptr;
    CacheNode* const nodes = caches_->nodes_data();

    RequestMetrics rm;
    rm.size_bytes = size;
    const size_t path_len = path.size();
    int hit = -1;
    for (size_t i = 0; i < path_len; ++i) {
      const topology::NodeId node_id = path[i];
      if (nodes[node_id].Contains(object)) {
        hit = static_cast<int>(i);
        if (counters != nullptr) {
          ++counters[node_id].hits;
          counters[node_id].bytes_served += size;
        }
        break;
      }
      if (counters != nullptr) ++counters[node_id].misses;
    }
    double base_delay;
    if (hit >= 0) {
      base_delay = delay_prefix[hit];
      rm.hops = hit;
      rm.cache_hit = true;
      rm.read_bytes = size;
      nodes[path[static_cast<size_t>(hit)]].lru()->Touch(object);
    } else {
      base_delay = delay_prefix[path_len - 1] + server_link_delay_;
      rm.hops = static_cast<int>(path_len) - 1 + server_link_hops_;
    }
    rm.latency =
        base_delay * (object < size_scale_table_.size()
                          ? size_scale_table_[object]
                          : static_cast<double>(size) / mean_object_size_);
    const int first_missing =
        hit >= 0 ? hit - 1 : static_cast<int>(path_len) - 1;
    for (int i = first_missing; i >= 0; --i) {
      // InsertAbsent: every descent node's ascent probe just missed.
      const topology::NodeId node_id = path[static_cast<size_t>(i)];
      bool inserted = false;
      const std::vector<trace::ObjectId>& evicted =
          nodes[node_id].lru()->InsertAbsent(object, size, &inserted);
      if (inserted) {
        rm.write_bytes += size;
        ++rm.insertions;
        if (counters != nullptr) {
          NodeCounters& c = counters[node_id];
          ++c.placements;
          c.evictions += evicted.size();
          c.bytes_cached += size;
        }
      } else if (counters != nullptr) {
        ++counters[node_id].placements_rejected;
      }
    }
    FinishRequest(rm, collect, request.time + rm.latency, outcome);
    return;
  }

  RequestMetrics request_metrics;
  request_metrics.size_bytes = size;

  MessageContext& ctx = ctx_;

  // Anchor the run's clock at this request's arrival. Under the analytic
  // policy this is the trace timestamp; under the event-driven one the
  // heap already advanced the clock to the arrival event, so the Set is
  // an identity. Every time consumer below — TTL expiry, retry backoff,
  // fault-schedule evaluation, queueing — derives from this one source.
  engine_.clock().Set(request.time);

  // Path resolution. Without a fault plane the route comes from the dense
  // (requester, attach) cache — resolved once, reused for every request
  // on the pair; with one, an unroutable attempt (link outage / crash
  // cutting the path) times out and retries with deterministic
  // exponential backoff, so the attempt time `now` may trail the request
  // time, and reroutes produce paths the cache must not serve.
  double now = engine_.clock().now();
  bool reachable = true;
  // Left-to-right running sums of the route's delays (CachedRoute); null
  // on the fault-plane path, whose routes are per-attempt.
  const double* delay_prefix = nullptr;
  if (faults_ == nullptr) {
    const CachedRoute& route =
        route_in != nullptr
            ? *route_in
            : RouteFor(requester, request.attach, request.server);
    ctx.path = &route.nodes;
    ctx.link_delays = &route.delays;
    delay_prefix = route.delay_prefix.data();
  } else {
    const FaultScheduleConfig& fc = faults_->config();
    int attempt = 0;
    for (;;) {
      bool rerouted = false;
      reachable = faults_->ResolvePath(requester, request.server, now,
                                       &arena_.path, &rerouted);
      if (reachable) {
        request_metrics.rerouted = rerouted;
        break;
      }
      if (attempt >= fc.max_retries) break;
      now += fc.request_timeout + std::ldexp(fc.retry_backoff, attempt);
      ++attempt;
      ++request_metrics.retries;
    }
    arena_.link_delays.clear();
    arena_.link_delays.reserve(arena_.path.size());
    for (size_t i = 0; i + 1 < arena_.path.size(); ++i) {
      arena_.link_delays.push_back(
          network_->LinkDelay(arena_.path[i], arena_.path[i + 1]));
    }
    ctx.path = &arena_.path;
    ctx.link_delays = &arena_.link_delays;
  }
  const std::vector<topology::NodeId>& path = *ctx.path;
  const std::vector<double>& link_delays = *ctx.link_delays;

  ctx.object = object;
  ctx.size = size;
  ctx.size_scale = object < size_scale_table_.size()
                       ? size_scale_table_[object]
                       : static_cast<double>(size) / mean_object_size_;
  ctx.now = now;
  // No virtual server link under en-route (servers are co-located with
  // their attach node), so its cost is 0 under every cost model. Cost
  // fields stay untouched for cost-oblivious schemes — nothing reads them.
  if (scheme_uses_link_costs_) {
    ctx.server_link_cost =
        server_link_hops_ == 0
            ? 0.0
            : cost_model_.LinkCost(server_link_delay_, size,
                                   mean_object_size_);
  }
  ctx.metrics = &request_metrics;
  ctx.request = RequestMessage();
  ctx.response = ResponseMessage();
  ctx.tier_service = 0.0;

  // Telemetry wiring: per-node counters only while collecting (they must
  // mirror the aggregates' warm-up exclusion exactly); the trace keys its
  // per-request sampling decision off the replay position.
  const uint64_t request_index = step_index_++;
  ctx.telemetry.request_index = request_index;
  ctx.telemetry.node_counters = collect ? metrics_.node_counters_data()
                                        : nullptr;
  ctx.telemetry.trace = trace_ != nullptr && trace_->SampleRequest(request_index)
                            ? trace_.get()
                            : nullptr;
  NodeCounters* const counters = ctx.telemetry.node_counters;
  EventTrace* const trace = ctx.telemetry.trace;

  if (!reachable) {
    // Retries exhausted with no surviving route: the request fails. It
    // still pays the timeouts it sat through — latency covers the elapsed
    // attempts plus the final timeout — and is recorded (failed, zero
    // hops) so requests == served + failed with nothing silently dropped.
    request_metrics.failed = true;
    request_metrics.latency = (now - request.time) + options_.faults.request_timeout;
    if (counters != nullptr) {
      counters[requester].retries +=
          static_cast<uint64_t>(request_metrics.retries);
    }
    if (trace != nullptr) {
      const int32_t level = node_levels_[static_cast<size_t>(requester)];
      if (request_metrics.retries > 0) {
        EmitEvent(trace, ctx, TraceEventType::kRetry, requester, level,
                  static_cast<double>(request_metrics.retries));
      }
      EmitEvent(trace, ctx, TraceEventType::kRequestFailed, requester, level,
                static_cast<double>(request_metrics.retries));
    }
    FinishRequest(request_metrics, collect,
                  request.time + request_metrics.latency, outcome);
    return;
  }

  // Link costs are size-dependent (latency / weighted models): computed
  // per request from the cached delays, with the exact same cost-model
  // calls as an uncached replay. Skipped outright for schemes that never
  // read them (LRU, MODULO, LFU, STATIC).
  if (scheme_uses_link_costs_) {
    arena_.link_costs.clear();
    arena_.link_costs.reserve(link_delays.size());
    for (double delay : link_delays) {
      arena_.link_costs.push_back(cost_model_.LinkCost(delay, size,
                                                       mean_object_size_));
    }
    ctx.link_costs = &arena_.link_costs;
  }

  if (faults_ != nullptr) {
    // Apply pending cold restarts along the path, then flag hops whose
    // cache process is still down at the attempt time. Crashes are
    // charged to the crashed node; retries and reroutes to the
    // requester — the same localities NodeCounters reconciliation
    // asserts against the aggregates.
    arena_.node_down.assign(path.size(), 0);
    arena_.disk_down.assign(path.size(), 0);
    for (size_t i = 0; i < path.size(); ++i) {
      const topology::NodeId node_id = path[i];
      if (faults_->DiskDown(node_id, now)) arena_.disk_down[i] = 1;
      const int applied =
          faults_->ApplyCrashRestarts(caches_->node(node_id), now);
      if (applied > 0) {
        request_metrics.crashes_applied += applied;
        if (counters != nullptr) {
          counters[node_id].crashes += static_cast<uint64_t>(applied);
        }
        if (trace != nullptr) {
          EmitEvent(trace, ctx, TraceEventType::kNodeCrash, node_id,
                    node_levels_[static_cast<size_t>(node_id)],
                    static_cast<double>(applied));
        }
      }
      if (faults_->NodeDown(node_id, now)) arena_.node_down[i] = 1;
    }
    if (counters != nullptr) {
      counters[requester].retries +=
          static_cast<uint64_t>(request_metrics.retries);
      if (request_metrics.rerouted) ++counters[requester].reroutes;
    }
    if (trace != nullptr) {
      const int32_t level = node_levels_[static_cast<size_t>(requester)];
      if (request_metrics.retries > 0) {
        EmitEvent(trace, ctx, TraceEventType::kRetry, requester, level,
                  static_cast<double>(request_metrics.retries));
      }
      if (request_metrics.rerouted) {
        EmitEvent(trace, ctx, TraceEventType::kReroute, requester, level,
                  static_cast<double>(path.size()));
      }
    }
  }

  if (trace != nullptr) {
    EmitEvent(trace, ctx, TraceEventType::kRequest, requester,
              node_levels_[static_cast<size_t>(requester)],
              static_cast<double>(path.size()));
  }

  // --- Phase 1: the request message ascends to its serving point. -------
  // The attempt starts here: under contention ctx.now accrues queue waits
  // and service from this instant on.
  const double attempt_start = ctx.now;
  const uint32_t served_version = Ascend(ctx);
  if (ctx.response.shed) {
    // Refused by a full node queue on the ascent: the exchange ends at
    // the refusing hop — no serve, no descent, no placements. Its latency
    // is the time it spent getting there (queue waits and service so far,
    // plus any fault-plane retries); Ascend set rm.hops to the refusal
    // hop and charged the refusing node's shed counter.
    request_metrics.shed = true;
    request_metrics.latency = ctx.now - request.time;
    if (scheme_observes_ascent_) scheme_->OnAbort();
    FinishRequest(request_metrics, collect, ctx.now, outcome);
    return;
  }
  const int hit_index = ctx.response.hit_index;

  // Access latency and hops (paper cost model: link delay scaled by object
  // size; the client-to-first-cache cost is excluded).
  double base_delay = 0.0;
  int hops = 0;
  if (hit_index >= 0) {
    if (delay_prefix != nullptr) {
      base_delay = delay_prefix[hit_index];
    } else {
      for (int i = 0; i < hit_index; ++i) {
        base_delay += link_delays[static_cast<size_t>(i)];
      }
    }
    hops = hit_index;
    if (ctx.response.served_by_sibling) {
      // Sibling detour: the probe climbs to the probing hop's parent and
      // over to the sibling, the body comes back the same way — two hops
      // and two extra link delays on top of the ascent to the probing
      // hop. Sibling sets are nonempty only off the tree root, so the
      // parent (path[hit_index + 1]) always exists here.
      base_delay +=
          link_delays[static_cast<size_t>(hit_index)] +
          network_->LinkDelay(path[static_cast<size_t>(hit_index) + 1],
                              ctx.response.sibling);
      hops = hit_index + 2;
    }
    request_metrics.cache_hit = true;
    request_metrics.read_bytes = size;
  } else {
    if (delay_prefix != nullptr) {
      base_delay = delay_prefix[link_delays.size()];
    } else {
      for (double d : link_delays) base_delay += d;
    }
    base_delay += server_link_delay_;
    hops = static_cast<int>(link_delays.size()) + server_link_hops_;
  }
  request_metrics.latency = base_delay * ctx.size_scale;
  // Analytic tier service (RAM/disk hit cost) rides on top of the
  // propagation latency; under the event-driven policy it was charged on
  // the serving node's queue and arrives via ctx.now below instead.
  if (ctx.tier_service > 0.0) request_metrics.latency += ctx.tier_service;
  request_metrics.hops = hops;

  // --- Phase 2: the serving node decides, the response descends. --------
  if (scheme_plain_lru_ && faults_ == nullptr && queueing_ == nullptr) {
    // Inlined equivalent of LruScheme::OnServe/OnDescend (see
    // CachingScheme::plain_lru_replay): touch the serving cache, insert
    // at every hop below the serving point. Statement-for-statement the
    // handlers' unfaulted behavior, minus ~4 virtual calls per request.
    CacheNode* const nodes = caches_->nodes_data();
    if (hit_index >= 0) {
      // A sibling serve refreshes the *sibling's* store (the probing hop
      // is proxy-only and keeps nothing) — the inlined equivalent of
      // OnSiblingServe's default delegation to OnServe.
      const topology::NodeId serving_node =
          ctx.response.served_by_sibling
              ? ctx.response.sibling
              : path[static_cast<size_t>(hit_index)];
      nodes[serving_node].lru()->Touch(object);
    }
    for (int i = ctx.first_missing(); i >= 0; --i) {
      // InsertAbsent is sound here: every descent node sits below the
      // serving point, so its ascent probe just missed for this object.
      bool inserted = false;
      const std::vector<trace::ObjectId>& evicted =
          nodes[path[static_cast<size_t>(i)]].lru()->InsertAbsent(
              object, size, &inserted);
      if (inserted) {
        ctx.RecordPlacement(i, evicted);
      } else {
        ctx.RecordPlacementRejected(i);
      }
    }
  } else if (faults_ == nullptr && queueing_ == nullptr) {
    if (ctx.response.served_by_sibling) {
      scheme_->OnSiblingServe(ctx);
    } else {
      scheme_->OnServe(ctx);
    }
    for (int i = ctx.first_missing(); i >= 0; --i) {
      scheme_->OnDescend(ctx, i);
    }
  } else {
    if (ctx.response.served_by_sibling) {
      scheme_->OnSiblingServe(ctx);
    } else {
      scheme_->OnServe(ctx);
    }
    // The body of a sibling serve crosses the sibling leg before it
    // descends: one contended transfer keyed on the (sibling, probing
    // hop) pair.
    if (queueing_ != nullptr && ctx.response.served_by_sibling) {
      const QueueingPlane::Transfer t = queueing_->TransferOn(
          ctx.response.sibling, path[static_cast<size_t>(hit_index)],
          ctx.now, size, options_.contention.link_bandwidth);
      request_metrics.queue_wait += t.wait;
      ctx.now += t.wait + t.tx;
    }
    // A down hop cannot act on the descending decision, and an up hop's
    // decision entry may be lost in transit. The scheme still runs its
    // descent hook (penalty bookkeeping survives; see DESIGN.md §10) but
    // must not place or refresh under decision_lost. Under contention a
    // hop additionally charges the object body's link transfer, and a
    // full store queue drops the decision there the same way
    // (DescendContention).
    const bool faulted = faults_ != nullptr;
    for (int i = ctx.first_missing(); i >= 0; --i) {
      if (faulted) {
        const bool lost =
            arena_.node_down[static_cast<size_t>(i)] != 0 ||
            faults_->DescentLoss(request_index, i);
        if (lost) {
          ctx.response.decision_lost = true;
          ctx.RecordDegraded(i);
        } else if (arena_.disk_down[static_cast<size_t>(i)] != 0) {
          // Disk outage at the hop: it cannot commit a placement (the
          // RAM tier is inclusive in the disk store), so the decision is
          // lost here. Disjoint from the message-loss degradation above.
          ctx.response.decision_lost = true;
          ctx.RecordDiskDegraded(i);
        }
      }
      if (queueing_ != nullptr) DescendContention(i);
      scheme_->OnDescend(ctx, i);
      ctx.response.decision_lost = false;
    }
  }
  // Contended exchanges pay their accrued waits on top of the analytic
  // propagation latency (zero when every service knob is zero, so the
  // equivalence with the analytic policy is exact).
  if (queueing_ != nullptr) {
    request_metrics.latency += ctx.now - attempt_start;
  }
  request_metrics.request_msg_bytes = ctx.request.payload_bytes;
  request_metrics.response_msg_bytes = ctx.response.payload_bytes;

  // Stamp freshness metadata on the copies this request created. Copies
  // below the serving point inherit the served version; the serving copy
  // keeps its original stamp (hits do not revalidate). A down hop stored
  // nothing this request, so any copy it already holds keeps its stamp.
  if (updates_ != nullptr) {
    const int top = ctx.top_index();
    for (int i = 0; i <= top; ++i) {
      if (i == hit_index) continue;
      if (faults_ != nullptr &&
          arena_.node_down[static_cast<size_t>(i)] != 0) {
        continue;
      }
      CacheNode* node = caches_->node(path[static_cast<size_t>(i)]);
      if (node->Contains(object)) {
        node->StampCopy(object, ctx.now, served_version);
      }
    }
  }

  FinishRequest(request_metrics, collect,
                attempt_start + request_metrics.latency, outcome);
}

void Simulator::DescendContention(int i) {
  MessageContext& ctx = ctx_;
  const ContentionParams& cp = options_.contention;
  const std::vector<topology::NodeId>& path = *ctx.path;
  const int top = static_cast<int>(path.size()) - 1;
  // The object body crosses the link above hop i before the hop acts.
  // The topmost descent hop of an origin-served request receives it over
  // the virtual server link: transmission time only, uncontended (the
  // origin is not a node of the queueing plane).
  QueueingPlane::Transfer t;
  if (ctx.origin_served() && i == top) {
    if (cp.link_bandwidth > 0.0) {
      t.tx = static_cast<double>(ctx.size) / cp.link_bandwidth;
    }
  } else {
    t = queueing_->TransferOn(path[static_cast<size_t>(i) + 1],
                              path[static_cast<size_t>(i)], ctx.now,
                              ctx.size, cp.link_bandwidth);
  }
  ctx.metrics->queue_wait += t.wait;
  ctx.now += t.wait + t.tx;
  // Store-queue pre-check: a full queue refuses the placement decision at
  // this hop — the scheme sees decision_lost and must not place, so the
  // later RecordPlacement commit can never itself refuse. Skipped when
  // the decision is already lost (fault plane): nothing left to drop.
  if (!ctx.response.decision_lost && cp.store_cost > 0.0 &&
      cp.node_queue_capacity > 0) {
    const topology::NodeId node_id = path[static_cast<size_t>(i)];
    const uint32_t depth =
        queueing_->BacklogDepth(node_id, ctx.now, cp.store_cost);
    if (depth >= cp.node_queue_capacity) {
      ctx.response.decision_lost = true;
      ctx.RecordStoreShed(i, depth);
    }
  }
}

}  // namespace cascache::sim
