#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace cascache::sim {

namespace {

/// Fills the exchange-invariant record fields and emits. `trace` must be
/// non-null; callers keep the disabled path to one pointer test.
void EmitEvent(EventTrace* trace, const MessageContext& ctx,
               TraceEventType type, int32_t node, int32_t level,
               double value) {
  TraceEvent event;
  event.request_index = ctx.telemetry.request_index;
  event.time = ctx.now;
  event.type = type;
  event.node = node;
  event.level = level;
  event.object = ctx.object;
  event.size_bytes = ctx.size;
  event.value = value;
  trace->Emit(event);
}

}  // namespace

Simulator::Simulator(const Network* network, CacheSet* caches,
                     schemes::CachingScheme* scheme,
                     const SimOptions& options)
    : network_(network),
      caches_(caches),
      scheme_(scheme),
      options_(options),
      catalog_(&network->catalog()),
      mean_object_size_(network->mean_object_size()),
      server_link_delay_(network->server_link_delay()),
      server_link_hops_(network->server_link_hops()),
      scheme_observes_ascent_(scheme != nullptr && scheme->observes_ascent()) {
  // The exchange context's invariant fields point at the simulator's
  // reused per-request buffers; wire them once.
  ctx_.path = &path_;
  ctx_.link_delays = &link_delays_;
  ctx_.link_costs = &link_costs_;
  ctx_.server_link_delay = server_link_delay_;
  ctx_.caches = caches_;
  // Null/mismatched wiring is a programming error, not a configuration
  // one: fail fast.
  CASCACHE_CHECK(network != nullptr);
  CASCACHE_CHECK(caches != nullptr);
  CASCACHE_CHECK(caches->num_nodes() == network->num_nodes());
  CASCACHE_CHECK(scheme != nullptr);
  node_levels_.resize(static_cast<size_t>(network->num_nodes()));
  for (topology::NodeId v = 0; v < network->num_nodes(); ++v) {
    node_levels_[static_cast<size_t>(v)] = network->NodeLevel(v);
  }
  ctx_.telemetry.node_levels = node_levels_.data();
  if (options.trace.enabled) {
    trace_ = std::make_unique<EventTrace>(options.trace);
  }
  // Option values can come straight from the CLI; defer their rejection
  // to Run() so callers get a Status instead of an abort. Direct Step()
  // drivers fall back to the default cost model meanwhile.
  if (!(options.warmup_fraction >= 0.0 && options.warmup_fraction < 1.0)) {
    init_status_ = util::Status::InvalidArgument(
        "warmup_fraction must be in [0, 1)");
    return;
  }
  auto model_or = CostModel::Create(options.cost_model);
  if (!model_or.ok()) {
    init_status_ = model_or.status();
    return;
  }
  cost_model_ = *model_or;
  if (options.faults.active()) {
    if (util::Status status = options.faults.Validate(); !status.ok()) {
      init_status_ = status;
      return;
    }
    faults_ = std::make_unique<FaultPlane>(options.faults, network_);
  }
}

Simulator::Simulator(Network* network, schemes::CachingScheme* scheme,
                     const SimOptions& options)
    : Simulator(network, network->caches(), scheme, options) {}

util::Status Simulator::EnableCoherency(uint32_t num_objects) {
  const CoherencyParams& params = options_.coherency;
  if (params.protocol == CoherencyProtocol::kNone &&
      params.mutable_fraction == 0.0) {
    updates_.reset();  // Paper setting: nothing to track.
    return util::Status::Ok();
  }
  CASCACHE_ASSIGN_OR_RETURN(UpdateSchedule schedule,
                            UpdateSchedule::Create(num_objects, params));
  updates_ = std::make_unique<UpdateSchedule>(std::move(schedule));
  return util::Status::Ok();
}

util::Status Simulator::Run(const trace::Workload& workload,
                            uint64_t capacity_bytes_per_node) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_between = [](Clock::time_point from,
                                  Clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  };
  const Clock::time_point t_start = Clock::now();
  CASCACHE_RETURN_IF_ERROR(init_status_);
  if (capacity_bytes_per_node == 0) {
    return util::Status::InvalidArgument("cache capacity must be > 0");
  }
  if (workload.requests.empty()) {
    return util::Status::InvalidArgument("empty workload");
  }
  CASCACHE_RETURN_IF_ERROR(
      EnableCoherency(workload.catalog.num_objects()));

  CacheNodeConfig config;
  config.mode = scheme_->cache_mode();
  config.capacity_bytes = capacity_bytes_per_node;
  config.frequency = options_.frequency;
  if (scheme_->uses_dcache()) {
    const double avg_objects =
        static_cast<double>(capacity_bytes_per_node) / mean_object_size_;
    config.dcache_entries = static_cast<size_t>(
        std::max(1.0, options_.dcache_ratio * avg_objects));
    config.dcache_policy = options_.dcache_policy;
  }
  if (options_.level_capacity_growth == 1.0 ||
      network_->MaxNodeLevel() == 0) {
    caches_->Configure(config);
  } else {
    // Distribute the same total budget across levels with capacity
    // proportional to growth^level.
    const int n = network_->num_nodes();
    const double growth = options_.level_capacity_growth;
    if (growth <= 0.0) {
      return util::Status::InvalidArgument(
          "level_capacity_growth must be > 0");
    }
    double weight_sum = 0.0;
    std::vector<double> weights(static_cast<size_t>(n));
    for (topology::NodeId v = 0; v < n; ++v) {
      weights[static_cast<size_t>(v)] =
          std::pow(growth, network_->NodeLevel(v));
      weight_sum += weights[static_cast<size_t>(v)];
    }
    const double budget =
        static_cast<double>(capacity_bytes_per_node) * static_cast<double>(n);
    std::vector<uint64_t> capacities(static_cast<size_t>(n));
    for (topology::NodeId v = 0; v < n; ++v) {
      capacities[static_cast<size_t>(v)] = std::max<uint64_t>(
          1, static_cast<uint64_t>(budget * weights[static_cast<size_t>(v)] /
                                   weight_sum));
    }
    caches_->ConfigureWithCapacities(config, capacities);
  }
  metrics_.Reset();
  metrics_.ResetNodes(network_->num_nodes());
  if (trace_ != nullptr) trace_->Clear();
  // Forget fault streams and applied crash epochs so a repeated Run
  // replays the same chaotic schedule bit-identically.
  if (faults_ != nullptr) faults_->Reset();
  step_index_ = 0;

  const size_t warmup_count = static_cast<size_t>(
      options_.warmup_fraction * static_cast<double>(workload.requests.size()));
  const Clock::time_point t_configured = Clock::now();
  for (size_t i = 0; i < warmup_count; ++i) {
    Step(workload.requests[i], /*collect=*/false);
  }
  const Clock::time_point t_warmed = Clock::now();
  for (size_t i = warmup_count; i < workload.requests.size(); ++i) {
    Step(workload.requests[i], /*collect=*/true);
  }
  const Clock::time_point t_done = Clock::now();
  phase_times_.configure_seconds = seconds_between(t_start, t_configured);
  phase_times_.warmup_seconds = seconds_between(t_configured, t_warmed);
  phase_times_.measure_seconds = seconds_between(t_warmed, t_done);
  return util::Status::Ok();
}

uint32_t Simulator::Ascend(MessageContext& ctx) {
  // Version the client receives; downstream copies inherit it (a stale
  // serving copy propagates its stale version). All freshness checks use
  // ctx.now, the attempt time: after fault-plane retries it trails the
  // request's nominal time (and equals it otherwise).
  uint32_t served_version =
      updates_ == nullptr ? 0 : updates_->VersionAt(ctx.object, ctx.now);

  // The request message climbs the distribution tree toward the server.
  // At each hop: coherency admission first — under a protocol, expired or
  // invalidated copies are discarded and the request continues upstream;
  // under kNone a stale copy is served (and counted) — then, if the hop
  // cannot serve, the scheme's ascent handler piggybacks its state. A
  // hop whose cache process is down (fault plane) is transparent: it can
  // serve nothing and its piggyback entry is lost.
  NodeCounters* const counters = ctx.telemetry.node_counters;
  EventTrace* const trace = ctx.telemetry.trace;
  const bool faults_active = faults_ != nullptr;
  for (size_t i = 0; i < path_.size(); ++i) {
    const topology::NodeId node_id = path_[i];
    CacheNode* node = caches_->node(node_id);
    const int32_t level = node_levels_[static_cast<size_t>(node_id)];
    const bool down = faults_active && node_down_[i] != 0;
    bool servable = !down && node->Contains(ctx.object);
    if (servable && updates_ != nullptr) {
      const CacheNode::CopyStamp* stamp = node->FindCopy(ctx.object);
      // Copies can only enter a cache through StampCopy'd insertions
      // within this run; treat a missing stamp (e.g. test-injected copy)
      // as fresh-at-time-0.
      const double fetch_time = stamp != nullptr ? stamp->fetch_time : 0.0;
      const uint32_t version = stamp != nullptr ? stamp->version : 0;
      const CoherencyProtocol protocol = options_.coherency.protocol;
      if (protocol == CoherencyProtocol::kTtl &&
          ctx.now - fetch_time > options_.coherency.ttl) {
        node->EraseObject(ctx.object);
        ++ctx.metrics->copies_expired;
        servable = false;
        if (counters != nullptr) ++counters[node_id].expirations;
        if (trace != nullptr) {
          EmitEvent(trace, ctx, TraceEventType::kExpired, node_id, level,
                    ctx.now - fetch_time);
        }
      } else {
        const uint32_t current = updates_->VersionAt(ctx.object, ctx.now);
        if (protocol == CoherencyProtocol::kInvalidation &&
            version < current) {
          node->EraseObject(ctx.object);
          ++ctx.metrics->copies_invalidated;
          servable = false;
          if (counters != nullptr) ++counters[node_id].invalidations;
          if (trace != nullptr) {
            EmitEvent(trace, ctx, TraceEventType::kInvalidated, node_id,
                      level, static_cast<double>(current - version));
          }
        } else {
          if (version < current) {
            ctx.metrics->stale_hit = true;
            if (counters != nullptr) ++counters[node_id].stale_serves;
            if (trace != nullptr) {
              EmitEvent(trace, ctx, TraceEventType::kStaleServe, node_id,
                        level, static_cast<double>(current - version));
            }
          }
          served_version = version;
        }
      }
    }
    if (servable) {
      ctx.response.hit_index = static_cast<int>(i);
      if (counters != nullptr) {
        ++counters[node_id].hits;
        counters[node_id].bytes_served += ctx.size;
      }
      if (trace != nullptr) {
        EmitEvent(trace, ctx, TraceEventType::kHit, node_id, level,
                  static_cast<double>(i));
      }
      return served_version;
    }
    if (counters != nullptr) ++counters[node_id].misses;
    if (trace != nullptr) {
      EmitEvent(trace, ctx, TraceEventType::kMiss, node_id, level,
                static_cast<double>(i));
    }
    if (scheme_observes_ascent_) {
      ctx.request.hop = static_cast<int>(i);
      if (faults_active) {
        // A down hop contributes no piggyback entry; an up hop's entry
        // may still be lost in transit. Either way the scheme sees
        // piggyback_lost for this hop only and applies its documented
        // fallback (DESIGN.md §10).
        const bool lost =
            down || faults_->AscentLoss(ctx.telemetry.request_index,
                                        static_cast<int>(i));
        if (lost) {
          ctx.request.piggyback_lost = true;
          ctx.RecordDegraded(static_cast<int>(i));
        }
        scheme_->OnAscend(ctx, static_cast<int>(i));
        ctx.request.piggyback_lost = false;
      } else {
        scheme_->OnAscend(ctx, static_cast<int>(i));
      }
    }
  }
  ctx.response.hit_index = -1;
  if (trace != nullptr) {
    // The origin serve is not node-scoped: node/level are -1.
    EmitEvent(trace, ctx, TraceEventType::kOrigin, -1, -1,
              static_cast<double>(path_.size()) - 1.0 + server_link_hops_);
  }
  return served_version;
}

void Simulator::Step(const trace::Request& request, bool collect) {
  const trace::ObjectId object = request.object;
  const uint64_t size = catalog_->size(object);
  const trace::ServerId server = catalog_->server(object);

  const topology::NodeId requester = network_->RequesterNode(request.client);

  RequestMetrics request_metrics;
  request_metrics.size_bytes = size;

  // Path resolution. Without a fault plane this is the historical direct
  // lookup; with one, an unroutable attempt (link outage / crash cutting
  // the path) times out and retries with deterministic exponential
  // backoff, so the attempt time `now` may trail the request time.
  double now = request.time;
  bool reachable = true;
  if (faults_ == nullptr) {
    path_ = network_->PathToServer(requester, server);
  } else {
    const FaultScheduleConfig& fc = faults_->config();
    int attempt = 0;
    for (;;) {
      bool rerouted = false;
      reachable = faults_->ResolvePath(requester, server, now, &path_,
                                       &rerouted);
      if (reachable) {
        request_metrics.rerouted = rerouted;
        break;
      }
      if (attempt >= fc.max_retries) break;
      now += fc.request_timeout + std::ldexp(fc.retry_backoff, attempt);
      ++attempt;
      ++request_metrics.retries;
    }
  }

  MessageContext& ctx = ctx_;
  ctx.object = object;
  ctx.size = size;
  ctx.size_scale = static_cast<double>(size) / mean_object_size_;
  ctx.now = now;
  // No virtual server link under en-route (servers are co-located with
  // their attach node), so its cost is 0 under every cost model.
  ctx.server_link_cost =
      server_link_hops_ == 0
          ? 0.0
          : cost_model_.LinkCost(server_link_delay_, size,
                                 mean_object_size_);
  ctx.metrics = &request_metrics;
  ctx.request = RequestMessage();
  ctx.response = ResponseMessage();

  // Telemetry wiring: per-node counters only while collecting (they must
  // mirror the aggregates' warm-up exclusion exactly); the trace keys its
  // per-request sampling decision off the replay position.
  const uint64_t request_index = step_index_++;
  ctx.telemetry.request_index = request_index;
  ctx.telemetry.node_counters = collect ? metrics_.node_counters_data()
                                        : nullptr;
  ctx.telemetry.trace = trace_ != nullptr && trace_->SampleRequest(request_index)
                            ? trace_.get()
                            : nullptr;
  NodeCounters* const counters = ctx.telemetry.node_counters;
  EventTrace* const trace = ctx.telemetry.trace;

  if (!reachable) {
    // Retries exhausted with no surviving route: the request fails. It
    // still pays the timeouts it sat through — latency covers the elapsed
    // attempts plus the final timeout — and is recorded (failed, zero
    // hops) so requests == served + failed with nothing silently dropped.
    request_metrics.failed = true;
    request_metrics.latency = (now - request.time) + options_.faults.request_timeout;
    if (counters != nullptr) {
      counters[requester].retries +=
          static_cast<uint64_t>(request_metrics.retries);
    }
    if (trace != nullptr) {
      const int32_t level = node_levels_[static_cast<size_t>(requester)];
      if (request_metrics.retries > 0) {
        EmitEvent(trace, ctx, TraceEventType::kRetry, requester, level,
                  static_cast<double>(request_metrics.retries));
      }
      EmitEvent(trace, ctx, TraceEventType::kRequestFailed, requester, level,
                static_cast<double>(request_metrics.retries));
    }
    if (collect) metrics_.Record(request_metrics);
    return;
  }

  link_delays_.clear();
  link_delays_.reserve(path_.size());
  link_costs_.clear();
  link_costs_.reserve(path_.size());
  for (size_t i = 0; i + 1 < path_.size(); ++i) {
    const double delay = network_->LinkDelay(path_[i], path_[i + 1]);
    link_delays_.push_back(delay);
    link_costs_.push_back(cost_model_.LinkCost(delay, size,
                                               mean_object_size_));
  }

  if (faults_ != nullptr) {
    // Apply pending cold restarts along the path, then flag hops whose
    // cache process is still down at the attempt time. Crashes are
    // charged to the crashed node; retries and reroutes to the
    // requester — the same localities NodeCounters reconciliation
    // asserts against the aggregates.
    node_down_.assign(path_.size(), 0);
    for (size_t i = 0; i < path_.size(); ++i) {
      const topology::NodeId node_id = path_[i];
      const int applied =
          faults_->ApplyCrashRestarts(caches_->node(node_id), now);
      if (applied > 0) {
        request_metrics.crashes_applied += applied;
        if (counters != nullptr) {
          counters[node_id].crashes += static_cast<uint64_t>(applied);
        }
        if (trace != nullptr) {
          EmitEvent(trace, ctx, TraceEventType::kNodeCrash, node_id,
                    node_levels_[static_cast<size_t>(node_id)],
                    static_cast<double>(applied));
        }
      }
      if (faults_->NodeDown(node_id, now)) node_down_[i] = 1;
    }
    if (counters != nullptr) {
      counters[requester].retries +=
          static_cast<uint64_t>(request_metrics.retries);
      if (request_metrics.rerouted) ++counters[requester].reroutes;
    }
    if (trace != nullptr) {
      const int32_t level = node_levels_[static_cast<size_t>(requester)];
      if (request_metrics.retries > 0) {
        EmitEvent(trace, ctx, TraceEventType::kRetry, requester, level,
                  static_cast<double>(request_metrics.retries));
      }
      if (request_metrics.rerouted) {
        EmitEvent(trace, ctx, TraceEventType::kReroute, requester, level,
                  static_cast<double>(path_.size()));
      }
    }
  }

  if (trace != nullptr) {
    EmitEvent(trace, ctx, TraceEventType::kRequest, requester,
              node_levels_[static_cast<size_t>(requester)],
              static_cast<double>(path_.size()));
  }

  // --- Phase 1: the request message ascends to its serving point. -------
  const uint32_t served_version = Ascend(ctx);
  const int hit_index = ctx.response.hit_index;

  // Access latency and hops (paper cost model: link delay scaled by object
  // size; the client-to-first-cache cost is excluded).
  double base_delay = 0.0;
  int hops = 0;
  if (hit_index >= 0) {
    for (int i = 0; i < hit_index; ++i) {
      base_delay += link_delays_[static_cast<size_t>(i)];
    }
    hops = hit_index;
    request_metrics.cache_hit = true;
    request_metrics.read_bytes = size;
  } else {
    for (double d : link_delays_) base_delay += d;
    base_delay += server_link_delay_;
    hops = static_cast<int>(link_delays_.size()) + server_link_hops_;
  }
  request_metrics.latency = base_delay * ctx.size_scale;
  request_metrics.hops = hops;

  // --- Phase 2: the serving node decides, the response descends. --------
  scheme_->OnServe(ctx);
  if (faults_ == nullptr) {
    for (int i = ctx.first_missing(); i >= 0; --i) {
      scheme_->OnDescend(ctx, i);
    }
  } else {
    // A down hop cannot act on the descending decision, and an up hop's
    // decision entry may be lost in transit. The scheme still runs its
    // descent hook (penalty bookkeeping survives; see DESIGN.md §10) but
    // must not place or refresh under decision_lost.
    for (int i = ctx.first_missing(); i >= 0; --i) {
      const bool lost =
          node_down_[static_cast<size_t>(i)] != 0 ||
          faults_->DescentLoss(request_index, i);
      if (lost) {
        ctx.response.decision_lost = true;
        ctx.RecordDegraded(i);
      }
      scheme_->OnDescend(ctx, i);
      ctx.response.decision_lost = false;
    }
  }
  request_metrics.request_msg_bytes = ctx.request.payload_bytes;
  request_metrics.response_msg_bytes = ctx.response.payload_bytes;

  // Stamp freshness metadata on the copies this request created. Copies
  // below the serving point inherit the served version; the serving copy
  // keeps its original stamp (hits do not revalidate). A down hop stored
  // nothing this request, so any copy it already holds keeps its stamp.
  if (updates_ != nullptr) {
    const int top = ctx.top_index();
    for (int i = 0; i <= top; ++i) {
      if (i == hit_index) continue;
      if (faults_ != nullptr && node_down_[static_cast<size_t>(i)] != 0) {
        continue;
      }
      CacheNode* node = caches_->node(path_[static_cast<size_t>(i)]);
      if (node->Contains(object)) {
        node->StampCopy(object, ctx.now, served_version);
      }
    }
  }

  if (collect) metrics_.Record(request_metrics);
}

}  // namespace cascache::sim
