#include "sim/cache_set.h"

namespace cascache::sim {

CacheSet::CacheSet(int num_nodes) {
  CASCACHE_CHECK(num_nodes >= 0);
  nodes_.reserve(static_cast<size_t>(num_nodes));
  CacheNodeConfig default_config;
  default_config.capacity_bytes = 1;  // Placeholder until Configure().
  for (topology::NodeId v = 0; v < num_nodes; ++v) {
    nodes_.emplace_back(v, default_config);
  }
}

void CacheSet::Configure(const CacheNodeConfig& config) {
  for (CacheNode& node : nodes_) node.Reset(config);
}

void CacheSet::ConfigureWithCapacities(
    const CacheNodeConfig& config, const std::vector<uint64_t>& capacities) {
  CASCACHE_CHECK(capacities.size() == nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    CacheNodeConfig node_config = config;
    node_config.capacity_bytes = capacities[i];
    nodes_[i].Reset(node_config);
  }
}

}  // namespace cascache::sim
