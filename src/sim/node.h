#ifndef CASCACHE_SIM_NODE_H_
#define CASCACHE_SIM_NODE_H_

#include <memory>
#include <vector>

#include "cache/dcache.h"
#include "cache/descriptor.h"
#include "cache/descriptor_table.h"
#include "cache/flat_lru.h"
#include "cache/flat_store.h"
#include "cache/frequency.h"
#include "cache/gds_cache.h"
#include "cache/lfu_cache.h"
#include "cache/ncl_cache.h"
#include "topology/graph.h"
#include "util/check.h"

namespace cascache::sim {

using cache::ObjectDescriptor;
using trace::ObjectId;

/// Replacement machinery a node runs. kLru backs the LRU and MODULO
/// baselines (no descriptors); kCost backs LNC-R and the coordinated
/// scheme (NCL-ordered store + descriptor bookkeeping + optional d-cache);
/// kGds and kLfu back the extra single-cache replacement baselines
/// (GreedyDual-Size and perfect in-cache LFU).
enum class CacheMode { kLru, kCost, kGds, kLfu };

struct CacheNodeConfig {
  CacheMode mode = CacheMode::kLru;
  uint64_t capacity_bytes = 0;
  /// d-cache capacity in descriptors; 0 disables the d-cache.
  size_t dcache_entries = 0;
  /// d-cache replacement (paper §2.4 default: LFU).
  cache::DCachePolicy dcache_policy = cache::DCachePolicy::kLfu;
  /// Use hashed (sparse) id→slot index tables instead of direct-index
  /// arrays. Required for huge procedural catalogs (e.g. 10^8 objects)
  /// where a dense table per store would dwarf the cached data; the
  /// simulator sets this from the catalog size.
  bool sparse_ids = false;
  /// Two-tier node (Traffic Server's RAM-cache-over-disk design): a small
  /// fast RAM tier in front of the mode store, sized as this fraction of
  /// `capacity_bytes`. 0 disables the tier (single-store node, today's
  /// behavior). The RAM tier is strictly inclusive — every RAM-resident
  /// object also lives in the disk (mode) store, so hit/miss decisions
  /// and byte-hit ratios are unchanged; only the serving tier (and hence
  /// service cost) differs.
  double ram_fraction = 0.0;
  /// Absolute RAM-tier capacity in bytes; overrides `ram_fraction` when
  /// non-zero.
  uint64_t ram_capacity_bytes = 0;
  cache::FrequencyEstimatorParams frequency;

  /// RAM-tier capacity this config resolves to (0 = untiered).
  uint64_t EffectiveRamCapacity() const {
    if (ram_capacity_bytes > 0) return ram_capacity_bytes;
    if (ram_fraction <= 0.0) return 0;
    return static_cast<uint64_t>(ram_fraction *
                                 static_cast<double>(capacity_bytes));
  }
};

/// A cache attached to one network node. Owns the object store, the
/// descriptors of cached objects, and the d-cache holding descriptors of
/// hot non-cached objects (paper §2.3-2.4). Schemes drive it through the
/// mode-specific methods below; the simulator only queries Contains().
///
/// All stores are flat (struct-of-arrays slot pools + direct-index
/// id→slot tables over the closed catalog); Reset() recycles pooled
/// slots in place when the configuration is unchanged (crash cold
/// restarts re-fill warm memory) and is required to leave no stale index
/// entries behind.
class CacheNode {
 public:
  CacheNode(topology::NodeId id, const CacheNodeConfig& config);

  topology::NodeId id() const { return id_; }
  CacheMode mode() const { return config_.mode; }
  /// Active configuration; a cold restart (fault plane) re-applies it.
  const CacheNodeConfig& config() const { return config_; }
  uint64_t capacity_bytes() const { return config_.capacity_bytes; }
  const cache::FrequencyEstimator& estimator() const { return estimator_; }

  /// Whether the object is stored in the main cache (any mode). Inline:
  /// this is the per-hop probe of the replay ascent, the hottest call in
  /// the simulator.
  bool Contains(ObjectId id) const {
    if (lru_ != nullptr) return lru_->Contains(id);
    if (gds_ != nullptr) return gds_->Contains(id);
    if (lfu_ != nullptr) return lfu_->Contains(id);
    return ncl_->Contains(id);
  }

  /// Advisory prefetch of the Contains() probe line for `id` (see
  /// SlotIndex::Prefetch). The replay loop issues these for the next
  /// request's path one request ahead; no state changes.
  void PrefetchProbe(ObjectId id) const {
    if (lru_ != nullptr) {
      lru_->PrefetchProbe(id);
    } else if (gds_ != nullptr) {
      gds_->PrefetchProbe(id);
    } else if (lfu_ != nullptr) {
      lfu_->PrefetchProbe(id);
    } else {
      ncl_->PrefetchProbe(id);
    }
  }

  /// Advisory prefetch of the LRU store's eviction-victim entries (see
  /// FlatLru::PrefetchVictim); no-op outside LRU mode.
  void PrefetchLruVictim() const {
    if (lru_ != nullptr) lru_->PrefetchVictim();
  }

  /// Removes an object from the main cache regardless of mode (coherency
  /// drops, test manipulation). In cost mode the descriptor is demoted to
  /// the d-cache. Also forgets the copy's freshness stamp and, on a
  /// tiered node, drops the RAM copy (inclusion). Returns false if the
  /// object was not cached.
  bool EraseObject(ObjectId id);

  // --- RAM tier (two-tier nodes) --------------------------------------------

  /// Whether this node runs a RAM tier over its mode store.
  bool tiered() const { return ram_ != nullptr; }

  /// The RAM tier; tiered nodes only.
  cache::FlatLru* ram() {
    CASCACHE_CHECK_MSG(ram_ != nullptr, "node is not tiered");
    return ram_.get();
  }

  /// Outcome of serving a cached object through the tier stack.
  struct TierServe {
    bool ram_hit = false;   ///< Served from RAM (else from disk).
    bool promoted = false;  ///< Disk serve copied the object into RAM.
    int demotions = 0;      ///< RAM victims pushed out by the promotion.
  };

  /// Serves a hit on a tiered node: a RAM-resident object is touched and
  /// served from RAM; a disk-only object is served from disk and promoted
  /// into the RAM tier (promotion-on-hit), evicting RAM victims as needed
  /// — their disk copies stay, so a demotion only loses the fast path.
  /// An object larger than the RAM tier is served from disk unpromoted.
  /// The disk (mode) store's own recency/priority update stays with the
  /// scheme's OnServe, exactly as on an untiered node.
  TierServe ServeTiered(ObjectId id, uint64_t size);

  /// Drops the RAM copies of disk-eviction victims (demote-on-evict: the
  /// inclusive RAM tier may not outlive the disk copy). Returns how many
  /// victims were RAM-resident. Tiered nodes only.
  int DropRamCopies(const std::vector<ObjectId>& victims);

  // --- Copy freshness tracking (coherency substrate) ------------------------

  /// Fetch time and origin version of the locally cached copy, recorded
  /// by the simulator when coherency tracking is active.
  struct CopyStamp {
    double fetch_time = 0.0;
    uint32_t version = 0;
  };

  void StampCopy(ObjectId id, double fetch_time, uint32_t version);
  /// nullptr if no stamp is recorded.
  const CopyStamp* FindCopy(ObjectId id) const;

  /// Structural invariants, used by tests and debug sweeps: byte usage
  /// within capacity; in cost mode, the cached-object set and the main
  /// descriptor table coincide and are disjoint from the d-cache.
  bool CheckInvariants() const;

  uint64_t used_bytes() const;
  size_t num_cached_objects() const;

  /// Drops all cached objects and descriptors, applying a new config.
  /// When the new config matches the current one the flat stores are
  /// cleared in place (pooled slots recycled, index tables emptied);
  /// otherwise they are rebuilt.
  void Reset(const CacheNodeConfig& config);

  // --- LRU mode -----------------------------------------------------------

  // The mode accessors are inline: the scheme handlers call them for
  // every placement/touch on the replay hot path.

  cache::FlatLru* lru() {
    CASCACHE_CHECK_MSG(lru_ != nullptr, "node is not in LRU mode");
    return lru_.get();
  }

  // --- GDS / LFU modes ------------------------------------------------------

  cache::GdsCache* gds() {
    CASCACHE_CHECK_MSG(gds_ != nullptr, "node is not in GDS mode");
    return gds_.get();
  }
  cache::LfuCache* lfu() {
    CASCACHE_CHECK_MSG(lfu_ != nullptr, "node is not in LFU mode");
    return lfu_.get();
  }

  // --- Cost mode ----------------------------------------------------------

  cache::NclCache* ncl() {
    CASCACHE_CHECK_MSG(ncl_ != nullptr, "node is not in cost mode");
    return ncl_.get();
  }
  cache::DCache* dcache() { return dcache_.get(); }

  /// Descriptor of an object, whether cached (main table) or tracked in
  /// the d-cache; nullptr if unknown at this node.
  ObjectDescriptor* FindDescriptor(ObjectId id);

  /// True if the object's descriptor lives in the main table (object is
  /// cached here).
  bool DescriptorInMain(ObjectId id) const {
    return main_descriptors_.Contains(id);
  }

  /// Records an access on the object's descriptor if the node knows the
  /// object; refreshes its frequency estimate and, for cached objects,
  /// its NCL eviction priority; for d-cached descriptors, its LFU
  /// priority. Returns the descriptor, or nullptr if unknown.
  ObjectDescriptor* RecordAccess(ObjectId id, double now);

  /// Ensures the d-cache has a descriptor for a non-cached object,
  /// creating one (with a single access at `now`) if absent. Subject to
  /// LFU admission; may return nullptr if the d-cache rejects it or is
  /// disabled. Must not be called for objects cached here.
  ObjectDescriptor* AdmitDescriptor(ObjectId id, uint64_t size, double now);

  /// Sets the miss penalty on the object's descriptor (main or d-cache),
  /// refreshing the dependent priorities. No-op if the node has no
  /// descriptor for it.
  void UpdateMissPenalty(ObjectId id, double miss_penalty, double now);

  /// Greedy NCL eviction preview for inserting `size` bytes (paper §2.1's
  /// l computation). Cost mode only.
  cache::NclCache::EvictionPlan PlanEvictionFor(uint64_t size) const;

  /// Allocation-free variant: fills a caller-owned plan, reusing its
  /// victims buffer (hot path of the coordinated request ascent).
  void PlanEvictionInto(uint64_t size,
                        cache::NclCache::EvictionPlan* plan) const;

  /// Inserts an object into the cost-mode store with the given miss
  /// penalty. The object's descriptor is promoted from the d-cache (or
  /// created), the access history is preserved, evicted objects'
  /// descriptors are demoted to the d-cache. Returns whether the object
  /// was stored; `evicted_out`, when given, receives the victims the
  /// insertion pushed out (empty on rejection), reusing its capacity.
  bool InsertCost(ObjectId id, uint64_t size, double miss_penalty,
                  double now, std::vector<ObjectId>* evicted_out = nullptr);

  /// Recomputes the NCL priority of a cached object from its descriptor
  /// (f(now) * miss_penalty). Cost mode; object must be cached.
  void RefreshLoss(ObjectId id, double now);

 private:
  topology::NodeId id_;
  CacheNodeConfig config_;
  cache::FrequencyEstimator estimator_;

  std::unique_ptr<cache::FlatLru> lru_;
  /// Inclusive RAM tier over the mode store (nullptr = untiered).
  std::unique_ptr<cache::FlatLru> ram_;
  std::unique_ptr<cache::NclCache> ncl_;
  std::unique_ptr<cache::GdsCache> gds_;
  std::unique_ptr<cache::LfuCache> lfu_;
  std::unique_ptr<cache::DCache> dcache_;
  /// Descriptors of objects currently in the cost-mode main cache
  /// (chunked pool: stable pointers, no per-descriptor allocation).
  cache::DescriptorTable main_descriptors_;
  /// Freshness stamps of cached copies (populated only when the simulator
  /// runs with coherency tracking). May contain leftover stamps for
  /// objects the store evicted internally; consumers must check
  /// Contains() first.
  cache::FlatIdMap<CopyStamp> copy_stamps_;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_NODE_H_
