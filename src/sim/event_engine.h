#ifndef CASCACHE_SIM_EVENT_ENGINE_H_
#define CASCACHE_SIM_EVENT_ENGINE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "util/check.h"

namespace cascache::sim {

/// The one simulated-time source of the replay core. Both scheduling
/// policies of the simulator advance it and read request start times off
/// it:
///
///  - analytic (default): the replay loop Set()s the clock to each trace
///    request's timestamp — time is carried by the trace, latency is a
///    closed-form sum, and the event heap stays empty;
///  - event-driven (contention): EventEngine::Pop() advances the clock to
///    the popped event's time — time is carried by the heap.
///
/// Everything downstream (coherency TTL checks, fault-schedule
/// evaluation, retry backoff) derives its `ctx.now` from this clock: the
/// simulator initializes the attempt time from now() and extends it with
/// the request's own waits (retries, queueing), so one request's stalls
/// never advance global time.
class VirtualClock {
 public:
  double now() const { return now_; }
  /// Re-anchors the clock at an arrival's timestamp (analytic replay and
  /// direct Step() drivers; monotone for a sorted trace).
  void Set(double t) { now_ = t; }
  void Advance(double dt) { now_ += dt; }
  void Reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// Event kinds on the engine's heap. The numeric order is the tie-break
/// order at equal timestamps: completions drain before the next arrival
/// is admitted, so a zero-contention event-driven replay records requests
/// in exact trace order (the property the analytic-equivalence tests pin).
enum class EventKind : uint8_t {
  kCompletion = 0,  ///< A request's response reached its requester.
  kArrival = 1,     ///< A request enters the hierarchy.
};

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kArrival;
  /// Scheduling sequence number: the final tie-break, so identical
  /// (time, kind) pairs pop in the order they were scheduled and the
  /// whole replay is deterministic.
  uint64_t seq = 0;
  /// Caller-defined: the request's trace index for arrivals, the pending
  /// completion slot for completions.
  uint64_t payload = 0;
};

/// Time-ordered event heap + the VirtualClock it drives. Events pop in
/// (time, kind, seq) order; Pop() advances the clock to the popped
/// event's time, which is the only way time moves in the event-driven
/// replay. Scheduling into the past is a programming error (it would
/// re-order an already-processed prefix) and aborts.
class EventEngine {
 public:
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }

  void Schedule(EventKind kind, double time, uint64_t payload);

  /// Pops the earliest event into `*out` and advances the clock to its
  /// time; returns false when the heap is empty (clock unchanged).
  bool Pop(Event* out);

  size_t pending() const { return heap_.size(); }

  /// Drops all pending events and resets the clock and the sequence
  /// counter (a fresh Run()).
  void Reset();

 private:
  /// Min-heap order: `a` pops later than `b` iff (time, kind, seq)
  /// compares greater.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.kind != b.kind) return a.kind > b.kind;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  VirtualClock clock_;
  uint64_t next_seq_ = 0;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_EVENT_ENGINE_H_
