#include "sim/network.h"

#include <unordered_set>

#include "util/random.h"

namespace cascache::sim {

const char* ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kEnRoute:
      return "en-route";
    case Architecture::kHierarchical:
      return "hierarchical";
  }
  return "unknown";
}

Network::Network(NetworkParams params, const trace::ObjectCatalog* catalog)
    : params_(std::move(params)), catalog_(catalog) {}

util::StatusOr<std::unique_ptr<Network>> Network::Build(
    const NetworkParams& params, const trace::ObjectCatalog* catalog) {
  if (catalog == nullptr) {
    return util::Status::InvalidArgument("catalog must not be null");
  }
  if (catalog->num_objects() == 0) {
    return util::Status::InvalidArgument("catalog is empty");
  }

  std::unique_ptr<Network> net(new Network(params, catalog));
  net->mean_object_size_ = catalog->mean_size();

  if (params.architecture == Architecture::kEnRoute) {
    CASCACHE_ASSIGN_OR_RETURN(topology::TiersTopology topo,
                              topology::GenerateTiers(params.tiers));
    net->graph_ = std::move(topo.graph);
    // Origin servers and clients are co-located with MAN nodes only
    // (paper §3.2); en-route caches sit at every node.
    net->client_sites_ = topo.man_ids;
    net->server_sites_ = topo.man_ids;
    net->server_link_delay_ = 0.0;
  } else {
    CASCACHE_ASSIGN_OR_RETURN(topology::TreeTopology topo,
                              topology::BuildTree(params.tree));
    net->graph_ = std::move(topo.graph);
    net->client_sites_ = topo.leaves;
    net->server_sites_ = {topo.root};
    net->server_link_delay_ = topo.server_link_delay;
    net->node_levels_ = topo.level;
    for (int level : net->node_levels_) {
      net->max_node_level_ = std::max(net->max_node_level_, level);
    }
    // Sibling sets for ICP-style cooperation: the other children of each
    // node's parent, ascending id (children occupy consecutive ids, so
    // the natural order is already the deterministic probe order).
    net->parents_ = topo.parent;
    const size_t n = static_cast<size_t>(net->graph_.num_nodes());
    std::vector<std::vector<topology::NodeId>> children(n);
    for (size_t v = 0; v < n; ++v) {
      const topology::NodeId p = net->parents_[v];
      if (p != topology::kInvalidNode) {
        children[static_cast<size_t>(p)].push_back(
            static_cast<topology::NodeId>(v));
      }
    }
    net->sibling_sets_.assign(n, {});
    for (size_t v = 0; v < n; ++v) {
      const topology::NodeId p = net->parents_[v];
      if (p == topology::kInvalidNode) continue;
      for (topology::NodeId c : children[static_cast<size_t>(p)]) {
        if (c != static_cast<topology::NodeId>(v)) {
          net->sibling_sets_[v].push_back(c);
        }
      }
      if (!net->sibling_sets_[v].empty()) net->has_siblings_ = true;
    }
  }

  net->routing_ =
      std::make_unique<topology::RoutingTable>(&net->graph_);

  // Random client and server placement, deterministic in placement_seed.
  util::Rng rng(params.placement_seed);
  const uint32_t num_servers = catalog->num_servers();
  net->server_attach_.resize(num_servers);
  for (uint32_t s = 0; s < num_servers; ++s) {
    net->server_attach_[s] = net->server_sites_[static_cast<size_t>(
        rng.NextUint64(net->server_sites_.size()))];
  }
  // Clients are assigned lazily by hashing (client populations can be
  // large and sparse); fix the per-network salt here.
  net->client_attach_.clear();

  // Precompute the distribution tree of every destination in use, so the
  // routing table is read-only (and therefore shareable across worker
  // threads) from here on.
  for (topology::NodeId dest : net->server_attach_) {
    net->routing_->Precompute(dest);
  }

  net->caches_ = CacheSet(net->graph_.num_nodes());
  return net;
}

topology::NodeId Network::RequesterNode(ClientId client) const {
  // Deterministic hash assignment (SplitMix64 of client ^ seed).
  uint64_t z = (static_cast<uint64_t>(client) + 0x9E3779B97F4A7C15ULL) ^
               params_.placement_seed;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return client_sites_[z % client_sites_.size()];
}

topology::NodeId Network::ServerAttach(ServerId server) const {
  CASCACHE_CHECK(server < server_attach_.size());
  return server_attach_[server];
}

std::vector<topology::NodeId> Network::PathToServer(topology::NodeId from,
                                                    ServerId server) const {
  return routing().Path(from, ServerAttach(server));
}

double Network::MeanClientServerHops() const {
  // Average over distinct server attach points and all client sites.
  std::unordered_set<topology::NodeId> server_nodes(server_attach_.begin(),
                                                    server_attach_.end());
  if (server_nodes.empty() || client_sites_.empty()) return 0.0;
  double total = 0.0;
  uint64_t pairs = 0;
  for (topology::NodeId server_node : server_nodes) {
    for (topology::NodeId client_node : client_sites_) {
      total += routing().Hops(client_node, server_node);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs) + server_link_hops();
}

}  // namespace cascache::sim
