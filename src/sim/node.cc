#include "sim/node.h"

#include "util/check.h"

namespace cascache::sim {

CacheNode::CacheNode(topology::NodeId id, const CacheNodeConfig& config)
    : id_(id), estimator_(config.frequency) {
  Reset(config);
}

void CacheNode::Reset(const CacheNodeConfig& config) {
  config_ = config;
  estimator_ = cache::FrequencyEstimator(config.frequency);
  lru_.reset();
  ncl_.reset();
  gds_.reset();
  lfu_.reset();
  dcache_.reset();
  main_descriptors_.clear();
  copy_stamps_.clear();
  switch (config_.mode) {
    case CacheMode::kLru:
      lru_ = std::make_unique<cache::LruCache>(config_.capacity_bytes);
      break;
    case CacheMode::kGds:
      gds_ = std::make_unique<cache::GdsCache>(config_.capacity_bytes);
      break;
    case CacheMode::kLfu:
      lfu_ = std::make_unique<cache::LfuCache>(config_.capacity_bytes);
      break;
    case CacheMode::kCost:
      ncl_ = std::make_unique<cache::NclCache>(config_.capacity_bytes);
      if (config_.dcache_entries > 0) {
        dcache_ = std::make_unique<cache::DCache>(config_.dcache_entries,
                                                  config_.dcache_policy);
      }
      break;
  }
}

bool CacheNode::Contains(ObjectId id) const {
  if (lru_ != nullptr) return lru_->Contains(id);
  if (gds_ != nullptr) return gds_->Contains(id);
  if (lfu_ != nullptr) return lfu_->Contains(id);
  return ncl_->Contains(id);
}

uint64_t CacheNode::used_bytes() const {
  if (lru_ != nullptr) return lru_->used_bytes();
  if (gds_ != nullptr) return gds_->used_bytes();
  if (lfu_ != nullptr) return lfu_->used_bytes();
  return ncl_->used_bytes();
}

size_t CacheNode::num_cached_objects() const {
  if (lru_ != nullptr) return lru_->num_objects();
  if (gds_ != nullptr) return gds_->num_objects();
  if (lfu_ != nullptr) return lfu_->num_objects();
  return ncl_->num_objects();
}

bool CacheNode::EraseObject(ObjectId id) {
  copy_stamps_.erase(id);
  if (lru_ != nullptr) return lru_->Erase(id);
  if (gds_ != nullptr) return gds_->Erase(id);
  if (lfu_ != nullptr) return lfu_->Erase(id);
  if (!ncl_->Erase(id)) return false;
  // Demote the descriptor so the access history survives the drop.
  auto it = main_descriptors_.find(id);
  if (it != main_descriptors_.end()) {
    if (dcache_ != nullptr) dcache_->Insert(id, it->second);
    main_descriptors_.erase(it);
  }
  return true;
}

void CacheNode::StampCopy(ObjectId id, double fetch_time, uint32_t version) {
  copy_stamps_[id] = CopyStamp{fetch_time, version};
}

const CacheNode::CopyStamp* CacheNode::FindCopy(ObjectId id) const {
  auto it = copy_stamps_.find(id);
  return it == copy_stamps_.end() ? nullptr : &it->second;
}

bool CacheNode::CheckInvariants() const {
  if (used_bytes() > config_.capacity_bytes) return false;
  if (ncl_ == nullptr) {
    return main_descriptors_.empty();
  }
  if (ncl_->num_objects() != main_descriptors_.size()) return false;
  for (const auto& [id, desc] : main_descriptors_) {
    if (!ncl_->Contains(id)) return false;
    if (dcache_ != nullptr && dcache_->Contains(id)) return false;
    if (desc.size == 0) return false;
  }
  return true;
}

cache::LruCache* CacheNode::lru() {
  CASCACHE_CHECK_MSG(lru_ != nullptr, "node is not in LRU mode");
  return lru_.get();
}

cache::GdsCache* CacheNode::gds() {
  CASCACHE_CHECK_MSG(gds_ != nullptr, "node is not in GDS mode");
  return gds_.get();
}

cache::LfuCache* CacheNode::lfu() {
  CASCACHE_CHECK_MSG(lfu_ != nullptr, "node is not in LFU mode");
  return lfu_.get();
}

cache::NclCache* CacheNode::ncl() {
  CASCACHE_CHECK_MSG(ncl_ != nullptr, "node is not in cost mode");
  return ncl_.get();
}

cache::DCache* CacheNode::dcache() { return dcache_.get(); }

ObjectDescriptor* CacheNode::FindDescriptor(ObjectId id) {
  auto it = main_descriptors_.find(id);
  if (it != main_descriptors_.end()) return &it->second;
  if (dcache_ != nullptr) return dcache_->Find(id);
  return nullptr;
}

ObjectDescriptor* CacheNode::RecordAccess(ObjectId id, double now) {
  ObjectDescriptor* desc = FindDescriptor(id);
  if (desc == nullptr) return nullptr;
  estimator_.OnAccess(desc, now);
  if (DescriptorInMain(id)) {
    RefreshLoss(id, now);
  } else if (dcache_ != nullptr) {
    dcache_->Refresh(id, *desc);
  }
  return desc;
}

ObjectDescriptor* CacheNode::AdmitDescriptor(ObjectId id, uint64_t size,
                                             double now) {
  CASCACHE_CHECK(!DescriptorInMain(id));
  if (dcache_ == nullptr) return nullptr;
  if (ObjectDescriptor* existing = dcache_->Find(id); existing != nullptr) {
    return existing;
  }
  ObjectDescriptor desc;
  desc.size = size;
  estimator_.OnAccess(&desc, now);  // Record the access that brought it in.
  return dcache_->Insert(id, desc);
}

void CacheNode::UpdateMissPenalty(ObjectId id, double miss_penalty,
                                  double now) {
  ObjectDescriptor* desc = FindDescriptor(id);
  if (desc == nullptr) return;
  desc->miss_penalty = miss_penalty;
  if (DescriptorInMain(id)) RefreshLoss(id, now);
}

cache::NclCache::EvictionPlan CacheNode::PlanEvictionFor(
    uint64_t size) const {
  CASCACHE_CHECK(ncl_ != nullptr);
  return ncl_->PlanEviction(size);
}

void CacheNode::PlanEvictionInto(uint64_t size,
                                 cache::NclCache::EvictionPlan* plan) const {
  CASCACHE_CHECK(ncl_ != nullptr);
  ncl_->PlanEvictionInto(size, plan);
}

bool CacheNode::InsertCost(ObjectId id, uint64_t size, double miss_penalty,
                           double now, std::vector<ObjectId>* evicted_out) {
  CASCACHE_CHECK(ncl_ != nullptr);
  if (evicted_out != nullptr) evicted_out->clear();
  if (ncl_->Contains(id)) {
    UpdateMissPenalty(id, miss_penalty, now);
    return false;
  }
  if (size > config_.capacity_bytes) return false;

  // Promote (or create) the descriptor, preserving access history.
  ObjectDescriptor desc;
  if (dcache_ != nullptr) {
    if (ObjectDescriptor* existing = dcache_->Find(id); existing != nullptr) {
      desc = *existing;
      dcache_->Erase(id);
    }
  }
  if (desc.num_accesses == 0) {
    estimator_.OnAccess(&desc, now);
  }
  desc.size = size;
  desc.miss_penalty = miss_penalty;
  const double frequency = estimator_.Estimate(&desc, now);
  const double loss = frequency * miss_penalty;

  bool inserted = false;
  std::vector<ObjectId> evicted = ncl_->Insert(id, size, loss, &inserted);
  CASCACHE_CHECK(inserted);

  // Demote evicted objects' descriptors to the d-cache (their history is
  // worth keeping; LFU admission may still reject cold ones).
  for (ObjectId victim : evicted) {
    auto it = main_descriptors_.find(victim);
    CASCACHE_CHECK(it != main_descriptors_.end());
    if (dcache_ != nullptr) {
      dcache_->Insert(victim, it->second);
    }
    main_descriptors_.erase(it);
  }
  main_descriptors_[id] = desc;
  if (evicted_out != nullptr) *evicted_out = std::move(evicted);
  return true;
}

void CacheNode::RefreshLoss(ObjectId id, double now) {
  CASCACHE_CHECK(ncl_ != nullptr);
  auto it = main_descriptors_.find(id);
  CASCACHE_CHECK_MSG(it != main_descriptors_.end(),
                     "RefreshLoss on object without main descriptor");
  const double frequency = estimator_.Estimate(&it->second, now);
  ncl_->UpdateLoss(id, frequency * it->second.miss_penalty);
}

}  // namespace cascache::sim
