#include "sim/node.h"

#include "util/check.h"

namespace cascache::sim {

namespace {

/// Reset() clears a store in place only when the replacement machinery it
/// configures is unchanged; capacity or d-cache shape changes rebuild.
bool SameStoreShape(const CacheNodeConfig& a, const CacheNodeConfig& b) {
  return a.mode == b.mode && a.capacity_bytes == b.capacity_bytes &&
         a.dcache_entries == b.dcache_entries &&
         a.dcache_policy == b.dcache_policy && a.sparse_ids == b.sparse_ids &&
         a.EffectiveRamCapacity() == b.EffectiveRamCapacity();
}

}  // namespace

CacheNode::CacheNode(topology::NodeId id, const CacheNodeConfig& config)
    : id_(id), estimator_(config.frequency) {
  Reset(config);
}

void CacheNode::Reset(const CacheNodeConfig& config) {
  const bool reuse = SameStoreShape(config_, config);
  config_ = config;
  estimator_ = cache::FrequencyEstimator(config.frequency);
  main_descriptors_.Clear();
  copy_stamps_.Clear();
  main_descriptors_.SetSparse(config_.sparse_ids);
  copy_stamps_.SetSparse(config_.sparse_ids);
  if (reuse) {
    // Same store shape (the common case: crash cold-restarts re-apply the
    // active config): recycle the pooled slots and index tables in place
    // so the restarted cache re-fills warm memory.
    if (lru_ != nullptr) lru_->Clear();
    if (ram_ != nullptr) ram_->Clear();
    if (ncl_ != nullptr) ncl_->Clear();
    if (gds_ != nullptr) gds_->Clear();
    if (lfu_ != nullptr) lfu_->Clear();
    if (dcache_ != nullptr) dcache_->Clear();
    if (lru_ != nullptr || ncl_ != nullptr || gds_ != nullptr ||
        lfu_ != nullptr) {
      return;
    }
    // First Reset since construction: fall through and build the store.
  }
  lru_.reset();
  ram_.reset();
  ncl_.reset();
  gds_.reset();
  lfu_.reset();
  dcache_.reset();
  if (const uint64_t ram_capacity = config_.EffectiveRamCapacity();
      ram_capacity > 0) {
    ram_ = std::make_unique<cache::FlatLru>(ram_capacity);
    ram_->SetSparse(config_.sparse_ids);
  }
  switch (config_.mode) {
    case CacheMode::kLru:
      lru_ = std::make_unique<cache::FlatLru>(config_.capacity_bytes);
      lru_->SetSparse(config_.sparse_ids);
      break;
    case CacheMode::kGds:
      gds_ = std::make_unique<cache::GdsCache>(config_.capacity_bytes);
      gds_->SetSparse(config_.sparse_ids);
      break;
    case CacheMode::kLfu:
      lfu_ = std::make_unique<cache::LfuCache>(config_.capacity_bytes);
      lfu_->SetSparse(config_.sparse_ids);
      break;
    case CacheMode::kCost:
      ncl_ = std::make_unique<cache::NclCache>(config_.capacity_bytes);
      ncl_->SetSparse(config_.sparse_ids);
      if (config_.dcache_entries > 0) {
        dcache_ = std::make_unique<cache::DCache>(config_.dcache_entries,
                                                  config_.dcache_policy);
        dcache_->SetSparse(config_.sparse_ids);
      }
      break;
  }
}

uint64_t CacheNode::used_bytes() const {
  if (lru_ != nullptr) return lru_->used_bytes();
  if (gds_ != nullptr) return gds_->used_bytes();
  if (lfu_ != nullptr) return lfu_->used_bytes();
  return ncl_->used_bytes();
}

size_t CacheNode::num_cached_objects() const {
  if (lru_ != nullptr) return lru_->num_objects();
  if (gds_ != nullptr) return gds_->num_objects();
  if (lfu_ != nullptr) return lfu_->num_objects();
  return ncl_->num_objects();
}

bool CacheNode::EraseObject(ObjectId id) {
  copy_stamps_.Erase(id);
  // Inclusion: the RAM copy may not outlive the disk copy.
  if (ram_ != nullptr) ram_->Erase(id);
  if (lru_ != nullptr) return lru_->Erase(id);
  if (gds_ != nullptr) return gds_->Erase(id);
  if (lfu_ != nullptr) return lfu_->Erase(id);
  if (!ncl_->Erase(id)) return false;
  // Demote the descriptor so the access history survives the drop.
  if (ObjectDescriptor* desc = main_descriptors_.Find(id); desc != nullptr) {
    if (dcache_ != nullptr) dcache_->Insert(id, *desc);
    main_descriptors_.Erase(id);
  }
  return true;
}

void CacheNode::StampCopy(ObjectId id, double fetch_time, uint32_t version) {
  copy_stamps_.InsertOrAssign(id) = CopyStamp{fetch_time, version};
}

const CacheNode::CopyStamp* CacheNode::FindCopy(ObjectId id) const {
  return copy_stamps_.Find(id);
}

CacheNode::TierServe CacheNode::ServeTiered(ObjectId id, uint64_t size) {
  CASCACHE_CHECK(ram_ != nullptr);
  TierServe result;
  if (ram_->Touch(id)) {
    result.ram_hit = true;
    return result;
  }
  // Disk serve: promote into the RAM tier. RAM victims keep their disk
  // copies (demotion loses only the fast path); an object larger than the
  // tier is rejected by InsertAbsent and stays disk-only.
  bool inserted = false;
  const std::vector<ObjectId>& evicted = ram_->InsertAbsent(id, size,
                                                            &inserted);
  result.promoted = inserted;
  result.demotions = static_cast<int>(evicted.size());
  return result;
}

int CacheNode::DropRamCopies(const std::vector<ObjectId>& victims) {
  CASCACHE_CHECK(ram_ != nullptr);
  int dropped = 0;
  for (ObjectId victim : victims) {
    if (ram_->Erase(victim)) ++dropped;
  }
  return dropped;
}

bool CacheNode::CheckInvariants() const {
  if (used_bytes() > config_.capacity_bytes) return false;
  if (ram_ != nullptr) {
    if (!ram_->CheckInvariants()) return false;
    if (ram_->capacity_bytes() != config_.EffectiveRamCapacity()) return false;
    // Inclusion: every RAM-resident object has a disk copy of equal size.
    bool included = true;
    ram_->ForEach([&](ObjectId id, uint64_t size) {
      if (!Contains(id)) included = false;
      (void)size;
    });
    if (!included) return false;
  }
  if (ncl_ == nullptr) {
    return main_descriptors_.size() == 0;
  }
  if (ncl_->num_objects() != main_descriptors_.size()) return false;
  bool ok = true;
  main_descriptors_.ForEach(
      [&](ObjectId id, const ObjectDescriptor& desc) {
        if (!ncl_->Contains(id)) ok = false;
        if (dcache_ != nullptr && dcache_->Contains(id)) ok = false;
        if (desc.size == 0) ok = false;
      });
  return ok;
}

ObjectDescriptor* CacheNode::FindDescriptor(ObjectId id) {
  if (ObjectDescriptor* desc = main_descriptors_.Find(id); desc != nullptr) {
    return desc;
  }
  if (dcache_ != nullptr) return dcache_->Find(id);
  return nullptr;
}

ObjectDescriptor* CacheNode::RecordAccess(ObjectId id, double now) {
  ObjectDescriptor* desc = FindDescriptor(id);
  if (desc == nullptr) return nullptr;
  estimator_.OnAccess(desc, now);
  if (DescriptorInMain(id)) {
    RefreshLoss(id, now);
  } else if (dcache_ != nullptr) {
    dcache_->Refresh(id, *desc);
  }
  return desc;
}

ObjectDescriptor* CacheNode::AdmitDescriptor(ObjectId id, uint64_t size,
                                             double now) {
  CASCACHE_CHECK(!DescriptorInMain(id));
  if (dcache_ == nullptr) return nullptr;
  if (ObjectDescriptor* existing = dcache_->Find(id); existing != nullptr) {
    return existing;
  }
  ObjectDescriptor desc;
  desc.size = size;
  estimator_.OnAccess(&desc, now);  // Record the access that brought it in.
  return dcache_->Insert(id, desc);
}

void CacheNode::UpdateMissPenalty(ObjectId id, double miss_penalty,
                                  double now) {
  ObjectDescriptor* desc = FindDescriptor(id);
  if (desc == nullptr) return;
  desc->miss_penalty = miss_penalty;
  if (DescriptorInMain(id)) RefreshLoss(id, now);
}

cache::NclCache::EvictionPlan CacheNode::PlanEvictionFor(
    uint64_t size) const {
  CASCACHE_CHECK(ncl_ != nullptr);
  return ncl_->PlanEviction(size);
}

void CacheNode::PlanEvictionInto(uint64_t size,
                                 cache::NclCache::EvictionPlan* plan) const {
  CASCACHE_CHECK(ncl_ != nullptr);
  ncl_->PlanEvictionInto(size, plan);
}

bool CacheNode::InsertCost(ObjectId id, uint64_t size, double miss_penalty,
                           double now, std::vector<ObjectId>* evicted_out) {
  CASCACHE_CHECK(ncl_ != nullptr);
  if (evicted_out != nullptr) evicted_out->clear();
  if (ncl_->Contains(id)) {
    UpdateMissPenalty(id, miss_penalty, now);
    return false;
  }
  if (size > config_.capacity_bytes) return false;

  // Promote (or create) the descriptor, preserving access history.
  ObjectDescriptor desc;
  if (dcache_ != nullptr) {
    if (ObjectDescriptor* existing = dcache_->Find(id); existing != nullptr) {
      desc = *existing;
      dcache_->Erase(id);
    }
  }
  if (desc.num_accesses == 0) {
    estimator_.OnAccess(&desc, now);
  }
  desc.size = size;
  desc.miss_penalty = miss_penalty;
  const double frequency = estimator_.Estimate(&desc, now);
  const double loss = frequency * miss_penalty;

  bool inserted = false;
  const std::vector<ObjectId>& evicted = ncl_->Insert(id, size, loss,
                                                      &inserted);
  CASCACHE_CHECK(inserted);

  // Demote evicted objects' descriptors to the d-cache (their history is
  // worth keeping; LFU admission may still reject cold ones).
  for (ObjectId victim : evicted) {
    ObjectDescriptor* victim_desc = main_descriptors_.Find(victim);
    CASCACHE_CHECK(victim_desc != nullptr);
    if (dcache_ != nullptr) {
      dcache_->Insert(victim, *victim_desc);
    }
    main_descriptors_.Erase(victim);
  }
  main_descriptors_.Insert(id, desc);
  if (evicted_out != nullptr) *evicted_out = evicted;
  return true;
}

void CacheNode::RefreshLoss(ObjectId id, double now) {
  CASCACHE_CHECK(ncl_ != nullptr);
  ObjectDescriptor* desc = main_descriptors_.Find(id);
  CASCACHE_CHECK_MSG(desc != nullptr,
                     "RefreshLoss on object without main descriptor");
  const double frequency = estimator_.Estimate(desc, now);
  ncl_->UpdateLoss(id, frequency * desc->miss_penalty);
}

}  // namespace cascache::sim
