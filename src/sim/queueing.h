#ifndef CASCACHE_SIM_QUEUEING_H_
#define CASCACHE_SIM_QUEUEING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topology/graph.h"
#include "util/status.h"

namespace cascache::sim {

/// Contention knobs of the event-driven replay (DESIGN.md "Event engine &
/// contention"). All zero by default, which keeps the simulator on the
/// analytic scheduling policy: latency is the closed-form sum of link
/// delays and the event heap is never consulted. Setting any knob (or
/// `enabled`) switches Run() to the event-driven policy, where nodes have
/// per-operation service costs and bounded FIFO queues, links have finite
/// bandwidth with FIFO transmission, and arrivals can be replayed
/// open-loop on a rate ramp instead of at their trace timestamps.
struct ContentionParams {
  /// Forces the event-driven replay even with all costs at zero (used by
  /// the analytic-equivalence tests; a zero-cost event-driven run must
  /// reproduce the analytic results exactly).
  bool enabled = false;
  /// Node service seconds per ascent cache lookup.
  double lookup_cost = 0.0;
  /// Node service seconds per accepted placement (store write).
  double store_cost = 0.0;
  /// Node service seconds per d-cache probe, charged with the lookup at
  /// every ascent hop of a scheme that runs a d-cache.
  double dcache_cost = 0.0;
  /// Bounded node queue: maximum operations waiting ahead of a new one
  /// before the node sheds it. 0 = unbounded (no shedding).
  uint32_t node_queue_capacity = 0;
  /// Link bandwidth in bytes/second; the descending object body occupies
  /// each link for size/bandwidth seconds (FIFO). 0 = infinite.
  double link_bandwidth = 0.0;
  /// Open-loop arrival process: requests arrive at this rate (requests
  /// per second) regardless of completion, replacing trace timestamps.
  /// 0 = arrive at trace timestamps.
  double arrival_rate = 0.0;
  /// Fractional growth of the arrival rate per simulated second:
  /// rate(t) = arrival_rate * (1 + arrival_ramp * t). Lets one run sweep
  /// through an overload transition. Requires arrival_rate > 0.
  double arrival_ramp = 0.0;
  /// Diurnal modulation of the open-loop arrival rate: the instantaneous
  /// rate is further multiplied by
  /// (1 + arrival_diurnal_amplitude * sin(2 pi t / arrival_diurnal_period)),
  /// so a day-night load cycle drives the contention plane. Amplitude in
  /// [0, 1); requires arrival_rate > 0. Composes with arrival_ramp.
  double arrival_diurnal_amplitude = 0.0;
  /// Period of the diurnal cycle in simulated seconds (default one day).
  double arrival_diurnal_period = 86400.0;

  /// Whether Run() should use the event-driven scheduling policy.
  bool active() const {
    return enabled || lookup_cost > 0.0 || store_cost > 0.0 ||
           dcache_cost > 0.0 || node_queue_capacity > 0 ||
           link_bandwidth > 0.0 || arrival_rate > 0.0;
  }

  util::Status Validate() const;
};

/// Busy-until resource timelines for the event-driven replay: one FIFO
/// service queue per cache node and one per directed link. The model is
/// deliberately timeline-based rather than per-operation events — each
/// resource remembers only the time it drains (`busy_until`), an admitted
/// operation waits `busy_until - now`, and the backlog *depth* is the
/// wait divided by this operation's service cost. That keeps the queueing
/// state O(nodes) and the per-operation cost O(1) while reproducing FIFO
/// waiting times exactly for uniform service costs (M/D/1-style queues).
///
/// Single-threaded like the Simulator that owns it; parallel sweep
/// workers each own their plane.
class QueueingPlane {
 public:
  explicit QueueingPlane(int num_nodes);

  /// Forgets all backlog (a fresh Run()).
  void Reset();

  struct Admission {
    /// Seconds the operation waits behind the node's backlog (0 when
    /// shed: a refused operation does not wait).
    double wait = 0.0;
    /// Operations ahead of this one at admission time.
    uint32_t depth = 0;
    /// The queue was at capacity and the operation was refused.
    bool shed = false;
  };

  /// Admits an operation of service cost `cost` seconds at node `v`, or
  /// sheds it when `capacity` > 0 and the backlog is at least `capacity`
  /// operations deep. Zero-cost operations are free: no wait, no state.
  Admission AdmitOp(topology::NodeId v, double now, double cost,
                    uint32_t capacity);

  /// Backlog depth AdmitOp(v, now, cost, ...) would observe, without
  /// committing any state: the operations ahead of a new cost-`cost` op
  /// at node `v`. The descent pre-checks store admission with this
  /// (depth >= capacity would shed) so the scheme can be told the
  /// decision was dropped before it acts.
  uint32_t BacklogDepth(topology::NodeId v, double now, double cost) const;

  /// Whether AdmitOp(v, now, cost, capacity) would shed, without
  /// committing any state.
  bool WouldShed(topology::NodeId v, double now, double cost,
                 uint32_t capacity) const;

  struct Transfer {
    double wait = 0.0;  ///< Seconds queued behind earlier transmissions.
    double tx = 0.0;    ///< Transmission seconds (bytes / bandwidth).
  };

  /// Occupies the directed link from->to with a `bytes` transmission at
  /// `bandwidth` bytes/second, FIFO behind earlier transmissions. A
  /// non-positive bandwidth means an infinite link: free, no state.
  Transfer TransferOn(topology::NodeId from, topology::NodeId to, double now,
                      uint64_t bytes, double bandwidth);

  double node_busy_until(topology::NodeId v) const {
    return node_busy_[static_cast<size_t>(v)];
  }

 private:
  std::vector<double> node_busy_;
  /// Directed-link timelines, keyed from * num_nodes + to. Sparse: only
  /// links that carried a transmission have an entry.
  std::unordered_map<uint64_t, double> link_busy_;
  uint64_t num_nodes_;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_QUEUEING_H_
