#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "trace/trace_io.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace cascache::sim {

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)) {}

namespace {

util::Status ValidateSweepConfig(const ExperimentConfig& config) {
  if (config.schemes.empty()) {
    return util::Status::InvalidArgument("no schemes configured");
  }
  if (config.cache_fractions.empty()) {
    return util::Status::InvalidArgument("no cache sizes configured");
  }
  for (double f : config.cache_fractions) {
    if (f <= 0.0 || f > 1.0) {
      return util::Status::InvalidArgument("cache fraction out of (0, 1]");
    }
  }
  return util::Status::Ok();
}

}  // namespace

util::StatusOr<std::unique_ptr<ExperimentRunner>> ExperimentRunner::Create(
    const ExperimentConfig& config) {
  CASCACHE_RETURN_IF_ERROR(ValidateSweepConfig(config));
  std::unique_ptr<ExperimentRunner> runner(new ExperimentRunner(config));
  CASCACHE_ASSIGN_OR_RETURN(runner->workload_,
                            trace::GenerateWorkload(config.workload));
  CASCACHE_ASSIGN_OR_RETURN(
      runner->network_,
      Network::Build(config.network, &runner->workload_.catalog));
  return runner;
}

util::StatusOr<std::unique_ptr<ExperimentRunner>>
ExperimentRunner::CreateFromTrace(const ExperimentConfig& config,
                                  const std::string& trace_path) {
  CASCACHE_RETURN_IF_ERROR(ValidateSweepConfig(config));
  std::unique_ptr<ExperimentRunner> runner(new ExperimentRunner(config));
  // Probe the format version through the streaming reader (it validates
  // the header and catalog without touching the request region).
  CASCACHE_ASSIGN_OR_RETURN(std::unique_ptr<trace::TraceReader> probe,
                            trace::TraceReader::Open(trace_path));
  const uint32_t version = probe->version();
  probe.reset();
  const trace::ObjectCatalog* catalog = nullptr;
  if (version == trace::kTraceVersion2 || version == trace::kTraceVersion3) {
    CASCACHE_ASSIGN_OR_RETURN(runner->mapped_,
                              trace::MappedTrace::Open(trace_path));
    catalog = &runner->mapped_->catalog();
  } else {
    // v1 request regions are unaligned, hence not mmap-able: load them
    // the historical way.
    CASCACHE_ASSIGN_OR_RETURN(runner->workload_,
                              trace::ReadTrace(trace_path));
    catalog = &runner->workload_.catalog;
  }
  CASCACHE_ASSIGN_OR_RETURN(runner->network_,
                            Network::Build(config.network, catalog));
  return runner;
}

trace::WorkloadView ExperimentRunner::ReplayView() {
  if (mapped_ != nullptr && config_.release_trace_pages) {
    return mapped_->StreamingView();
  }
  return view();
}

int ResolveJobs(int requested) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const int hw = hw_raw > 0 ? static_cast<int>(hw_raw) : 1;
  int jobs = 0;
  const char* source = nullptr;
  if (requested >= 1) {
    jobs = requested;
    source = "jobs";
  } else if (const char* env = std::getenv("CASCACHE_JOBS"); env != nullptr) {
    const int env_jobs = std::atoi(env);
    if (env_jobs >= 1) {
      jobs = env_jobs;
      source = "CASCACHE_JOBS";
    }
  }
  if (jobs == 0) return hw;  // Default: one worker per hardware thread.
  // Oversubscribing replay workers only adds scheduler churn (each cell is
  // CPU-bound); clamp forced values to the hardware and say so.
  if (jobs > hw) {
    std::fprintf(stderr,
                 "cascache: %s=%d exceeds hardware_concurrency=%d; "
                 "clamping to %d\n",
                 source, jobs, hw, hw);
    return hw;
  }
  return jobs;
}

util::StatusOr<RunResult> ExperimentRunner::RunOne(
    const schemes::SchemeSpec& spec, double cache_fraction) {
  return RunCell(spec, cache_fraction, network_->caches());
}

util::StatusOr<RunResult> ExperimentRunner::RunCell(
    const schemes::SchemeSpec& spec, double cache_fraction,
    CacheSet* caches) {
  const trace::WorkloadView replay = ReplayView();
  schemes::SchemeSpec effective = spec;
  if (effective.kind == schemes::SchemeKind::kStatic &&
      effective.static_freeze_requests == 0) {
    // Default STATIC's learning phase to the warm-up period so frozen
    // contents are in place exactly when measurement starts.
    effective.static_freeze_requests = std::max<uint64_t>(
        1, static_cast<uint64_t>(config_.sim.warmup_fraction *
                                 static_cast<double>(
                                     replay.requests.size())));
  }
  CASCACHE_ASSIGN_OR_RETURN(std::unique_ptr<schemes::CachingScheme> scheme,
                            schemes::MakeScheme(effective));
  const uint64_t capacity = std::max<uint64_t>(
      1, static_cast<uint64_t>(cache_fraction *
                               static_cast<double>(
                                   replay.catalog->total_bytes())));
  Simulator simulator(network_.get(), caches, scheme.get(), config_.sim);
  const auto start = std::chrono::steady_clock::now();
  CASCACHE_RETURN_IF_ERROR(simulator.Run(replay, capacity));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult result;
  result.scheme = spec.Label();
  result.cache_fraction = cache_fraction;
  result.capacity_bytes = capacity;
  result.metrics = simulator.metrics().Summary();
  result.wall_seconds = wall;
  result.requests_per_sec =
      wall > 0.0 ? static_cast<double>(replay.requests.size()) / wall : 0.0;
  result.warmup_seconds = simulator.phase_times().warmup_seconds;
  result.measure_seconds = simulator.phase_times().measure_seconds;
  const std::vector<NodeCounters>& counters =
      simulator.metrics().node_counters();
  result.per_node.reserve(counters.size());
  for (topology::NodeId v = 0; v < network_->num_nodes(); ++v) {
    NodeUsage usage;
    usage.node = v;
    usage.level = network_->NodeLevel(v);
    usage.counters = counters[static_cast<size_t>(v)];
    result.per_node.push_back(usage);
  }
  if (const EventTrace* trace = simulator.event_trace(); trace != nullptr) {
    result.trace_events = trace->Records();
  }
  return result;
}

util::StatusOr<std::vector<RunResult>> ExperimentRunner::RunAll() {
  // Flatten the sweep into cells in the documented result order: cache
  // size first, then scheme (the order given in the config).
  struct Cell {
    const schemes::SchemeSpec* spec;
    double fraction;
  };
  std::vector<Cell> cells;
  cells.reserve(config_.cache_fractions.size() * config_.schemes.size());
  for (double fraction : config_.cache_fractions) {
    for (const schemes::SchemeSpec& spec : config_.schemes) {
      cells.push_back({&spec, fraction});
    }
  }

  int jobs =
      std::min<int>(ResolveJobs(config_.jobs),
                    static_cast<int>(std::max<size_t>(1, cells.size())));
  if (mapped_ != nullptr && config_.release_trace_pages && jobs > 1) {
    // Page release assumes one sequential consumer of the mapping;
    // concurrent cells at different offsets would refault each other's
    // dropped pages.
    std::fprintf(stderr,
                 "cascache: release_trace_pages forces jobs=1 (was %d)\n",
                 jobs);
    jobs = 1;
  }
  if (jobs <= 1) {
    // Exact legacy path: sequential, on the network's default cache set
    // (post-run state stays inspectable through Network::node()).
    std::vector<RunResult> results;
    results.reserve(cells.size());
    for (const Cell& cell : cells) {
      CASCACHE_ASSIGN_OR_RETURN(RunResult result,
                                RunOne(*cell.spec, cell.fraction));
      results.push_back(std::move(result));
    }
    return results;
  }

  // Parallel path: every cell runs on its own cache plane over the shared
  // immutable network. Each worker writes only results[i]/statuses[i] for
  // the cells it executed, so result order is the cell order by
  // construction, independent of completion order.
  std::vector<RunResult> results(cells.size());
  std::vector<util::Status> statuses(cells.size(), util::Status::Ok());
  {
    util::ThreadPool pool(jobs);
    for (size_t i = 0; i < cells.size(); ++i) {
      pool.Submit([this, i, &cells, &results, &statuses] {
        CacheSet caches = network_->MakeCacheSet();
        auto result_or = RunCell(*cells[i].spec, cells[i].fraction, &caches);
        if (result_or.ok()) {
          results[i] = std::move(result_or).value();
        } else {
          statuses[i] = result_or.status();
        }
      });
    }
    pool.Wait();
  }
  // Report the first failure in cell order (deterministic, like the
  // sequential path would).
  for (const util::Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return results;
}

util::Status WriteResultsCsv(const std::vector<RunResult>& results,
                             const std::string& path) {
  util::CsvWriter csv(path);
  csv.WriteLine(
      "scheme,cache_fraction,capacity_bytes,requests,avg_latency,"
      "avg_response_ratio,byte_hit_ratio,hit_ratio,avg_traffic_byte_hops,"
      "avg_hops,avg_load_bytes,read_load_share,stale_hit_ratio,"
      "avg_request_msg_bytes,avg_response_msg_bytes,avg_message_bytes,"
      "wall_seconds,requests_per_sec,warmup_seconds,measure_seconds,"
      "retries,failed_requests,reroutes,crashes_applied,"
      "degraded_decisions,served_requests,shed_requests,shed_placements,"
      "avg_queue_wait,max_queue_depth,"
      // Two-tier / sibling / degraded-node columns (appended at the end
      // so downstream parsers keyed on column position stay valid).
      "ram_hits,disk_hits,promotions,demotions,sibling_probes,"
      "sibling_hits,disk_degraded");
  for (const RunResult& r : results) {
    const MetricsSummary& m = r.metrics;
    // Peak queue depth is a gauge, reported as the max over the per-node
    // gauges (0 under the analytic policy: no queues).
    unsigned long long max_queue_depth = 0;
    for (const NodeUsage& u : r.per_node) {
      max_queue_depth = std::max(
          max_queue_depth,
          static_cast<unsigned long long>(u.counters.max_queue_depth));
    }
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "%s,%.6g,%llu,%llu,%.8g,%.8g,%.8g,%.8g,%.8g,%.8g,%.8g,%.8g,"
        "%.8g,%.8g,%.8g,%.8g,%.6g,%.6g,%.6g,%.6g,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu,%llu,%.8g,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu",
        util::CsvEscape(r.scheme).c_str(), r.cache_fraction,
        static_cast<unsigned long long>(r.capacity_bytes),
        static_cast<unsigned long long>(m.requests), m.avg_latency,
        m.avg_response_ratio, m.byte_hit_ratio, m.hit_ratio,
        m.avg_traffic_byte_hops, m.avg_hops, m.avg_load_bytes,
        m.read_load_share, m.stale_hit_ratio, m.avg_request_msg_bytes,
        m.avg_response_msg_bytes, m.avg_message_bytes, r.wall_seconds,
        r.requests_per_sec, r.warmup_seconds, r.measure_seconds,
        static_cast<unsigned long long>(m.retries),
        static_cast<unsigned long long>(m.failed_requests),
        static_cast<unsigned long long>(m.reroutes),
        static_cast<unsigned long long>(m.crashes_applied),
        static_cast<unsigned long long>(m.degraded_decisions),
        static_cast<unsigned long long>(m.served_requests),
        static_cast<unsigned long long>(m.shed_requests),
        static_cast<unsigned long long>(m.shed_placements),
        m.avg_queue_wait, max_queue_depth,
        static_cast<unsigned long long>(m.ram_hits),
        static_cast<unsigned long long>(m.disk_hits),
        static_cast<unsigned long long>(m.promotions),
        static_cast<unsigned long long>(m.demotions),
        static_cast<unsigned long long>(m.sibling_probes),
        static_cast<unsigned long long>(m.sibling_hits),
        static_cast<unsigned long long>(m.disk_degraded));
    csv.WriteLine(buf);
  }
  return csv.Close();
}

namespace {

/// One per-node CSV row; `scope` is "node" or "level".
void WriteCountersRow(util::CsvWriter* csv, const RunResult& r,
                      const char* scope, int node, int level,
                      const NodeCounters& c) {
  char buf[896];
  std::snprintf(
      buf, sizeof(buf),
      "%s,%.6g,%s,%d,%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
      "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
      "%llu,%llu,%llu,%llu",
      util::CsvEscape(r.scheme).c_str(), r.cache_fraction, scope, node, level,
      static_cast<unsigned long long>(c.requests_seen()),
      static_cast<unsigned long long>(c.hits),
      static_cast<unsigned long long>(c.misses),
      static_cast<unsigned long long>(c.evictions),
      static_cast<unsigned long long>(c.placements),
      static_cast<unsigned long long>(c.placements_rejected),
      static_cast<unsigned long long>(c.expirations),
      static_cast<unsigned long long>(c.invalidations),
      static_cast<unsigned long long>(c.stale_serves),
      static_cast<unsigned long long>(c.dcache_hits),
      static_cast<unsigned long long>(c.bytes_served),
      static_cast<unsigned long long>(c.bytes_cached),
      static_cast<unsigned long long>(c.crashes),
      static_cast<unsigned long long>(c.retries),
      static_cast<unsigned long long>(c.reroutes),
      static_cast<unsigned long long>(c.degraded),
      static_cast<unsigned long long>(c.sheds),
      static_cast<unsigned long long>(c.store_sheds),
      static_cast<unsigned long long>(c.max_queue_depth),
      // Total byte load the node handled: reads served + writes stored.
      static_cast<unsigned long long>(c.bytes_served + c.bytes_cached),
      static_cast<unsigned long long>(c.ram_hits),
      static_cast<unsigned long long>(c.disk_hits),
      static_cast<unsigned long long>(c.promotions),
      static_cast<unsigned long long>(c.demotions),
      static_cast<unsigned long long>(c.sibling_probes),
      static_cast<unsigned long long>(c.sibling_serves),
      static_cast<unsigned long long>(c.disk_degraded));
  csv->WriteLine(buf);
}

}  // namespace

util::Status WritePerNodeCsv(const std::vector<RunResult>& results,
                             const std::string& path) {
  util::CsvWriter csv(path);
  csv.WriteLine(
      "scheme,cache_fraction,scope,node,level,requests,hits,misses,"
      "evictions,placements,placements_rejected,expirations,invalidations,"
      "stale_serves,dcache_hits,bytes_served,bytes_cached,crashes,retries,"
      "reroutes,degraded,sheds,store_sheds,max_queue_depth,load_bytes,"
      // Two-tier / sibling / degraded-node columns (appended at the end).
      "ram_hits,disk_hits,promotions,demotions,sibling_probes,"
      "sibling_serves,disk_degraded");
  for (const RunResult& r : results) {
    int max_level = 0;
    for (const NodeUsage& u : r.per_node) {
      WriteCountersRow(&csv, r, "node", u.node, u.level, u.counters);
      max_level = std::max(max_level, u.level);
    }
    // Per-depth rollups (the paper's tree levels; node is -1).
    std::vector<NodeCounters> by_level(static_cast<size_t>(max_level) + 1);
    for (const NodeUsage& u : r.per_node) {
      by_level[static_cast<size_t>(u.level)] += u.counters;
    }
    for (int level = 0; level <= max_level; ++level) {
      WriteCountersRow(&csv, r, "level", -1, level,
                       by_level[static_cast<size_t>(level)]);
    }
  }
  return csv.Close();
}

util::Status WriteTraceJsonl(const std::vector<RunResult>& results,
                             const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  bool ok = true;
  for (const RunResult& r : results) {
    for (const TraceEvent& event : r.trace_events) {
      char prefix[128];
      std::snprintf(prefix, sizeof(prefix),
                    "{\"scheme\":\"%s\",\"cache_fraction\":%.6g,",
                    r.scheme.c_str(), r.cache_fraction);
      std::string line = prefix;
      EventTrace::AppendJsonFields(event, &line);
      line += "}\n";
      ok = ok &&
           std::fwrite(line.data(), 1, line.size(), f) == line.size();
    }
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return util::Status::IoError("short write: " + path);
  return util::Status::Ok();
}

std::string FormatSweepTable(const std::vector<RunResult>& results,
                             const std::string& metric_name,
                             double (*selector)(const MetricsSummary&)) {
  // Collect scheme order (first appearance) and cache sizes (ascending).
  std::vector<std::string> scheme_order;
  std::vector<double> fractions;
  for (const RunResult& r : results) {
    if (std::find(scheme_order.begin(), scheme_order.end(), r.scheme) ==
        scheme_order.end()) {
      scheme_order.push_back(r.scheme);
    }
    if (std::find(fractions.begin(), fractions.end(), r.cache_fraction) ==
        fractions.end()) {
      fractions.push_back(r.cache_fraction);
    }
  }
  std::sort(fractions.begin(), fractions.end());

  std::map<std::pair<double, std::string>, double> cells;
  for (const RunResult& r : results) {
    cells[{r.cache_fraction, r.scheme}] = selector(r.metrics);
  }

  std::vector<std::string> header = {"cache size (" + metric_name + ")"};
  for (const std::string& s : scheme_order) header.push_back(s);
  util::TablePrinter table(std::move(header));
  for (double f : fractions) {
    std::vector<std::string> row;
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f%%", f * 100.0);
    row.push_back(label);
    for (const std::string& s : scheme_order) {
      auto it = cells.find({f, s});
      row.push_back(it == cells.end() ? "-" : util::TablePrinter::Fmt(
                                                  it->second, 5));
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace cascache::sim
