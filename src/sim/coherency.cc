#include "sim/coherency.h"

#include <cmath>

#include "util/random.h"

namespace cascache::sim {

const char* CoherencyProtocolName(CoherencyProtocol protocol) {
  switch (protocol) {
    case CoherencyProtocol::kNone:
      return "none";
    case CoherencyProtocol::kTtl:
      return "ttl";
    case CoherencyProtocol::kInvalidation:
      return "invalidation";
  }
  return "unknown";
}

util::StatusOr<UpdateSchedule> UpdateSchedule::Create(
    uint32_t num_objects, const CoherencyParams& params) {
  if (params.mutable_fraction < 0.0 || params.mutable_fraction > 1.0) {
    return util::Status::InvalidArgument(
        "mutable_fraction must be in [0, 1]");
  }
  if (params.mean_update_period <= 0.0) {
    return util::Status::InvalidArgument("mean_update_period must be > 0");
  }
  if (params.protocol == CoherencyProtocol::kTtl && params.ttl <= 0.0) {
    return util::Status::InvalidArgument("ttl must be > 0");
  }

  util::Rng rng(params.seed);
  std::vector<double> periods(num_objects, 0.0);
  std::vector<double> phases(num_objects, 0.0);
  for (uint32_t i = 0; i < num_objects; ++i) {
    if (!rng.NextBool(params.mutable_fraction)) continue;
    periods[i] =
        params.mean_update_period * rng.NextDouble(0.5, 1.5);
    phases[i] = rng.NextDouble(0.0, periods[i]);
  }
  return UpdateSchedule(std::move(periods), std::move(phases));
}

UpdateSchedule::UpdateSchedule(std::vector<double> periods,
                               std::vector<double> phases)
    : periods_(std::move(periods)), phases_(std::move(phases)) {
  CASCACHE_CHECK(periods_.size() == phases_.size());
}

uint32_t UpdateSchedule::VersionAt(trace::ObjectId id, double t) const {
  CASCACHE_CHECK(id < periods_.size());
  const double period = periods_[id];
  if (period <= 0.0 || t <= 0.0) return 0;
  // Updates at times (k * period - phase) for k = 1, 2, ... that fall in
  // (0, t].
  const double count = std::floor((t + phases_[id]) / period);
  return count < 0.0 ? 0 : static_cast<uint32_t>(count);
}

}  // namespace cascache::sim
