#ifndef CASCACHE_SIM_COHERENCY_H_
#define CASCACHE_SIM_COHERENCY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/object_catalog.h"
#include "util/status.h"

namespace cascache::sim {

/// The paper assumes cached objects are kept up-to-date "e.g., by using a
/// cache coherency protocol if necessary" (§2), citing piggyback server
/// invalidation. This module makes that assumption explicit and
/// measurable: origin objects change over time, and a protocol decides
/// what a cached copy is worth.
enum class CoherencyProtocol {
  /// Serve copies as-is; staleness is only *measured* (stale-hit ratio).
  /// This quantifies how much the paper's freshness assumption hides.
  kNone,
  /// Time-to-live: a copy older than `ttl` is discarded on access and the
  /// request continues upstream (the web's Expires/max-age behavior).
  kTtl,
  /// Idealized server-driven invalidation: a copy whose version is behind
  /// the origin is discarded on access — equivalent to copies vanishing
  /// at update time, evaluated lazily (no invalidation traffic is
  /// modeled, making this the optimistic bound the paper's assumption
  /// corresponds to).
  kInvalidation,
};

const char* CoherencyProtocolName(CoherencyProtocol protocol);

struct CoherencyParams {
  CoherencyProtocol protocol = CoherencyProtocol::kNone;
  /// Copy lifetime for kTtl, seconds.
  double ttl = 3600.0;
  /// Fraction of objects that ever change (web objects are mostly static,
  /// §2: "access frequency is much higher than the update frequency").
  double mutable_fraction = 0.0;
  /// Mean seconds between updates of a mutable object.
  double mean_update_period = 4.0 * 3600.0;
  uint64_t seed = 99;
};

/// Deterministic per-object update process: each mutable object updates
/// periodically with a randomized period (uniform in [0.5, 1.5] x mean)
/// and phase, so the version at any time is O(1) to evaluate and the
/// whole schedule is reproducible without storing update events.
class UpdateSchedule {
 public:
  /// Randomized schedule over `num_objects` objects.
  static util::StatusOr<UpdateSchedule> Create(uint32_t num_objects,
                                               const CoherencyParams& params);

  /// Explicit schedule for tests: period[i] <= 0 marks an immutable
  /// object; phase[i] in [0, period[i]).
  UpdateSchedule(std::vector<double> periods, std::vector<double> phases);

  bool IsMutable(trace::ObjectId id) const {
    return periods_[id] > 0.0;
  }

  /// Number of updates in (0, t]; 0 for immutable objects and t <= 0.
  uint32_t VersionAt(trace::ObjectId id, double t) const;

  uint32_t num_objects() const {
    return static_cast<uint32_t>(periods_.size());
  }

 private:
  std::vector<double> periods_;  ///< <= 0 means immutable.
  std::vector<double> phases_;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_COHERENCY_H_
