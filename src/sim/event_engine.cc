#include "sim/event_engine.h"

namespace cascache::sim {

void EventEngine::Schedule(EventKind kind, double time, uint64_t payload) {
  // An event before the clock would have to be processed in a past the
  // replay already committed; the two schedulers (trace arrivals, which
  // are monotonized, and completions, which start from the current
  // attempt time) cannot produce one.
  CASCACHE_CHECK(time >= clock_.now());
  Event event;
  event.time = time;
  event.kind = kind;
  event.seq = next_seq_++;
  event.payload = payload;
  heap_.push(event);
}

bool EventEngine::Pop(Event* out) {
  if (heap_.empty()) return false;
  *out = heap_.top();
  heap_.pop();
  clock_.Set(out->time);
  return true;
}

void EventEngine::Reset() {
  heap_ = std::priority_queue<Event, std::vector<Event>, Later>();
  clock_.Reset();
  next_seq_ = 0;
}

}  // namespace cascache::sim
