#include "sim/queueing.h"

namespace cascache::sim {

util::Status ContentionParams::Validate() const {
  if (lookup_cost < 0.0 || store_cost < 0.0 || dcache_cost < 0.0) {
    return util::Status::InvalidArgument(
        "contention service costs must be >= 0");
  }
  if (link_bandwidth < 0.0) {
    return util::Status::InvalidArgument("link bandwidth must be >= 0");
  }
  if (arrival_rate < 0.0) {
    return util::Status::InvalidArgument("arrival rate must be >= 0");
  }
  if (arrival_ramp != 0.0 && arrival_rate <= 0.0) {
    return util::Status::InvalidArgument(
        "arrival ramp requires an open-loop arrival rate > 0");
  }
  if (arrival_ramp < 0.0) {
    return util::Status::InvalidArgument("arrival ramp must be >= 0");
  }
  if (arrival_diurnal_amplitude < 0.0 || arrival_diurnal_amplitude >= 1.0) {
    return util::Status::InvalidArgument(
        "arrival diurnal amplitude must be in [0,1)");
  }
  if (arrival_diurnal_amplitude > 0.0) {
    if (arrival_rate <= 0.0) {
      return util::Status::InvalidArgument(
          "arrival diurnal cycle requires an open-loop arrival rate > 0");
    }
    if (arrival_diurnal_period <= 0.0) {
      return util::Status::InvalidArgument(
          "arrival diurnal period must be > 0");
    }
  }
  return util::Status::Ok();
}

QueueingPlane::QueueingPlane(int num_nodes)
    : node_busy_(static_cast<size_t>(num_nodes), 0.0),
      num_nodes_(static_cast<uint64_t>(num_nodes)) {}

void QueueingPlane::Reset() {
  node_busy_.assign(node_busy_.size(), 0.0);
  link_busy_.clear();
}

QueueingPlane::Admission QueueingPlane::AdmitOp(topology::NodeId v, double now,
                                                double cost,
                                                uint32_t capacity) {
  Admission a;
  if (cost <= 0.0) return a;
  double& busy = node_busy_[static_cast<size_t>(v)];
  const double backlog = busy - now;
  if (backlog > 0.0) {
    a.wait = backlog;
    a.depth = static_cast<uint32_t>(backlog / cost);
  }
  if (capacity != 0 && a.depth >= capacity) {
    a.shed = true;
    a.wait = 0.0;
    return a;
  }
  busy = (backlog > 0.0 ? busy : now) + cost;
  return a;
}

uint32_t QueueingPlane::BacklogDepth(topology::NodeId v, double now,
                                     double cost) const {
  if (cost <= 0.0) return 0;
  const double backlog = node_busy_[static_cast<size_t>(v)] - now;
  if (backlog <= 0.0) return 0;
  return static_cast<uint32_t>(backlog / cost);
}

bool QueueingPlane::WouldShed(topology::NodeId v, double now, double cost,
                              uint32_t capacity) const {
  if (capacity == 0) return false;
  return BacklogDepth(v, now, cost) >= capacity;
}

QueueingPlane::Transfer QueueingPlane::TransferOn(topology::NodeId from,
                                                  topology::NodeId to,
                                                  double now, uint64_t bytes,
                                                  double bandwidth) {
  Transfer t;
  if (bandwidth <= 0.0) return t;
  t.tx = static_cast<double>(bytes) / bandwidth;
  double& busy = link_busy_[static_cast<uint64_t>(from) * num_nodes_ +
                            static_cast<uint64_t>(to)];
  if (busy > now) t.wait = busy - now;
  busy = now + t.wait + t.tx;
  return t;
}

}  // namespace cascache::sim
