#ifndef CASCACHE_SIM_REQUEST_ARENA_H_
#define CASCACHE_SIM_REQUEST_ARENA_H_

#include <cstdint>
#include <vector>

#include "topology/graph.h"
#include "trace/object_catalog.h"

namespace cascache::sim {

/// One replayed request, decoded out of the trace ahead of time: the
/// catalog lookups (size, origin server) and attach-point resolution
/// (requester hash, server attach) are hoisted into a tight decode loop so
/// the per-request hot path starts from plain integers instead of chasing
/// them one request at a time.
struct DecodedRequest {
  trace::ObjectId object = 0;
  uint64_t size = 0;
  trace::ServerId server = 0;
  topology::NodeId requester = 0;
  topology::NodeId attach = 0;
  double time = 0.0;
};

/// Per-request pipeline scratch, owned by the Simulator and reset (not
/// reallocated) every request. Everything the request path needs that is
/// not request-invariant lives here, so a replayed request performs no
/// heap allocation in the steady state.
struct RequestArena {
  /// Route-resolution scratch for the fault plane (reroutes produce paths
  /// that differ from the cached routes). The unfaulted replay reads the
  /// simulator's route cache instead and never touches these two.
  std::vector<topology::NodeId> path;
  std::vector<double> link_delays;

  /// Per-request link costs along the active path. Unlike delays these
  /// depend on the object size under the latency/weighted cost models, so
  /// they are recomputed for every request (identical calls to the cost
  /// model as the unbatched replay — bit-identity).
  std::vector<double> link_costs;

  /// Fault plane: per-hop "cache process down" flags, parallel to the
  /// active path.
  std::vector<uint8_t> node_down;

  /// Fault plane: per-hop "disk tier down" flags (degraded-node fault
  /// class), parallel to the active path.
  std::vector<uint8_t> disk_down;

  /// Decode block for batched replay (Simulator::ReplayRange).
  std::vector<DecodedRequest> batch;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_REQUEST_ARENA_H_
