#ifndef CASCACHE_SIM_EVENT_TRACE_H_
#define CASCACHE_SIM_EVENT_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace cascache::sim {

/// Knobs of the sampled structured event trace. Off by default: a
/// disabled trace costs the hot path a single null-pointer check.
struct EventTraceOptions {
  bool enabled = false;
  /// Fraction of requests traced. The decision is per request: a sampled
  /// request emits all of its events (request, per-hop outcomes,
  /// placements, evictions), an unsampled one emits none, so causal
  /// chains stay intact under sampling.
  double sampling_rate = 1.0;
  /// Ring-buffer capacity in records; once full, the oldest records are
  /// overwritten (dropped() counts the casualties).
  size_t ring_capacity = 4096;
  /// Seed of the deterministic per-request sampler: the same seed and
  /// request indices reproduce the same sampling decisions.
  uint64_t seed = 0x5ca1ab1edecade;
};

/// Record types emitted along one request's life cycle. Documented with
/// field semantics in docs/METRICS.md.
enum class TraceEventType : uint8_t {
  kRequest = 0,           ///< Request enters the hierarchy at its leaf.
  kHit,                   ///< A cache on the path served the object.
  kOrigin,                ///< The origin server served the object.
  kMiss,                  ///< A cache on the path could not serve.
  kExpired,               ///< A copy was dropped on TTL expiry.
  kInvalidated,           ///< A copy was dropped by an invalidation.
  kStaleServe,            ///< A cache served a copy behind the origin.
  kPlacement,             ///< A cache accepted a new copy.
  kPlacementRejected,     ///< A store declined a placement attempt.
  kEviction,              ///< A placement pushed a victim out.
  kDCacheHit,             ///< An ascent lookup found a d-cache descriptor.
  // Fault-plane records (emitted only when fault injection is active).
  kNodeCrash,             ///< A crashed cache was cold-restarted.
  kReroute,               ///< A request detoured around a failure.
  kRetry,                 ///< A timed-out request was retried.
  kRequestFailed,         ///< A request exhausted its retries.
  kFaultDegraded,         ///< A scheme fell back to no-state behavior.
  // Contention records (emitted only by the event-driven replay).
  kQueueDepth,            ///< Ops ahead of an admitted op at a node queue.
  kShed,                  ///< A node queue refused an op (request/store).
  // Tiered-node and sibling-cooperation records (appended: wire names of
  // the earlier types are stable).
  kSiblingProbe,          ///< A node probed a sibling for the object.
  kSiblingServe,          ///< A sibling held a fresh copy and served it.
  kDiskDegraded,          ///< A disk outage prevented a serve/placement.
  kPromotion,             ///< A disk serve copied the object into RAM.
  kDemotion,              ///< RAM copies dropped (eviction or inclusion).
};

/// Stable wire name of a record type (the JSONL "type" field).
const char* TraceEventTypeName(TraceEventType type);

/// One trace record. `value` is type-specific: serve events carry the
/// hop count, placement events the miss penalty the copy was admitted
/// with, eviction events the victim count (see docs/METRICS.md).
struct TraceEvent {
  uint64_t request_index = 0;  ///< Index of the request in the replay.
  double time = 0.0;           ///< Simulated time (seconds).
  TraceEventType type = TraceEventType::kRequest;
  int32_t node = -1;           ///< Cache node id; -1 if not node-scoped.
  int32_t level = 0;           ///< Tree depth of `node` (0 for en-route).
  uint64_t object = 0;
  uint64_t size_bytes = 0;
  double value = 0.0;          ///< Type-specific payload.
};

/// Bounded sink for TraceEvent records: deterministic per-request
/// sampling, a fixed-capacity ring holding the most recent records, and
/// JSONL serialization. Single-threaded like the Simulator that feeds it
/// (each parallel sweep worker owns its own instance).
class EventTrace {
 public:
  explicit EventTrace(const EventTraceOptions& options);

  const EventTraceOptions& options() const { return options_; }

  /// Whether the request at `request_index` is traced. Pure hash of
  /// (seed, index) against the sampling rate — independent of call order,
  /// so sequential and parallel sweeps sample identically.
  bool SampleRequest(uint64_t request_index) const;

  /// Appends a record, overwriting the oldest once the ring is full.
  void Emit(const TraceEvent& event);

  /// Records emitted over the sink's lifetime (kept + overwritten).
  uint64_t emitted() const { return emitted_; }
  /// Records overwritten by ring wrap-around.
  uint64_t dropped() const;

  /// Snapshot of the ring, oldest record first.
  std::vector<TraceEvent> Records() const;

  /// One JSONL line (no trailing newline) for a record.
  static std::string ToJsonLine(const TraceEvent& event);
  /// The line's fields without the enclosing braces, for callers that
  /// prepend annotations (scheme, cache fraction) to each record.
  static void AppendJsonFields(const TraceEvent& event, std::string* out);

  /// Writes the ring as JSONL, oldest record first.
  util::Status WriteJsonl(const std::string& path) const;

  void Clear();

 private:
  EventTraceOptions options_;
  /// Sampling threshold: trace iff Mix(seed, index) < threshold_, with
  /// rate >= 1 short-circuited to "always".
  uint64_t threshold_ = 0;
  bool sample_all_ = false;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;       ///< Ring slot the next record lands in.
  uint64_t emitted_ = 0;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_EVENT_TRACE_H_
