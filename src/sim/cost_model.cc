#include "sim/cost_model.h"

namespace cascache::sim {

const char* CostModelKindName(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kLatency:
      return "latency";
    case CostModelKind::kBandwidth:
      return "bandwidth";
    case CostModelKind::kHops:
      return "hops";
    case CostModelKind::kWeighted:
      return "weighted";
  }
  return "unknown";
}

util::StatusOr<CostModel> CostModel::Create(const CostModelParams& params) {
  if (params.kind == CostModelKind::kWeighted) {
    if (params.alpha < 0.0 || params.beta < 0.0 ||
        params.alpha + params.beta <= 0.0) {
      return util::Status::InvalidArgument(
          "weighted cost model needs non-negative weights with a positive "
          "sum");
    }
  }
  return CostModel(params);
}

double CostModel::LinkCost(double link_delay, uint64_t size_bytes,
                           double mean_object_size) const {
  const double size_scale =
      static_cast<double>(size_bytes) / mean_object_size;
  // Under the event-driven replay a finite link also charges the
  // transmission time; with infinite bandwidth (analytic mode) the term
  // vanishes and the historical costs are returned bit-identically.
  const double transfer =
      params_.link_transfer_bandwidth > 0.0
          ? static_cast<double>(size_bytes) / params_.link_transfer_bandwidth
          : 0.0;
  switch (params_.kind) {
    case CostModelKind::kLatency:
      return link_delay * size_scale + transfer;
    case CostModelKind::kBandwidth:
      return size_scale;
    case CostModelKind::kHops:
      return 1.0;
    case CostModelKind::kWeighted:
      // Grouping matters: the historical term alpha*delay*scale is kept
      // as-is (adding a zero transfer term is exact) so analytic-mode
      // weighted costs do not move by a rounding step.
      return params_.alpha * link_delay * size_scale +
             params_.alpha * transfer + params_.beta * size_scale;
  }
  return 0.0;
}

}  // namespace cascache::sim
