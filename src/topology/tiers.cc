#include "topology/tiers.h"

#include <algorithm>

#include "util/random.h"

namespace cascache::topology {

namespace {

/// Uniform delay around `mean` with relative jitter.
double JitteredDelay(util::Rng* rng, double mean, double jitter) {
  const double lo = mean * (1.0 - jitter);
  const double hi = mean * (1.0 + jitter);
  return rng->NextDouble(lo, hi);
}

}  // namespace

double TiersTopology::MeanWanLinkDelay() const {
  double sum = 0.0;
  int count = 0;
  for (NodeId u : wan_ids) {
    for (const Edge& e : graph.Neighbors(u)) {
      if (IsWan(e.to) && e.to > u) {  // Count each undirected link once.
        sum += e.delay;
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

double TiersTopology::MeanManLinkDelay() const {
  double sum = 0.0;
  int count = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const Edge& e : graph.Neighbors(u)) {
      if (e.to > u && (!IsWan(u) || !IsWan(e.to))) {
        sum += e.delay;
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

util::StatusOr<TiersTopology> GenerateTiers(const TiersParams& params) {
  if (params.wan_nodes < 2) {
    return util::Status::InvalidArgument("need at least 2 WAN nodes");
  }
  if (params.man_nodes < 1) {
    return util::Status::InvalidArgument("need at least 1 MAN node");
  }
  if (params.wan_mean_delay <= 0.0 || params.man_mean_delay <= 0.0) {
    return util::Status::InvalidArgument("link delays must be positive");
  }
  if (params.delay_jitter < 0.0 || params.delay_jitter >= 1.0) {
    return util::Status::InvalidArgument("jitter must be in [0, 1)");
  }
  if (params.wan_locality_window < 1 || params.wan_redundancy_span < 1) {
    return util::Status::InvalidArgument("locality parameters must be >= 1");
  }
  if (params.wan_redundancy_edges < 0 || params.man_redundancy_edges < 0) {
    return util::Status::InvalidArgument("redundancy edges must be >= 0");
  }

  util::Rng rng(params.seed);
  TiersTopology topo;
  const int total = params.wan_nodes + params.man_nodes;
  topo.graph = Graph(total);
  for (NodeId v = 0; v < params.wan_nodes; ++v) topo.wan_ids.push_back(v);
  for (NodeId v = params.wan_nodes; v < total; ++v) topo.man_ids.push_back(v);

  // 1. WAN spanning tree with a locality bias: node i attaches to a parent
  // within the preceding `wan_locality_window` nodes. This yields a
  // chain-with-branches backbone whose routing paths are long, matching
  // the ~12-hop average client-server paths the paper reports.
  for (NodeId i = 1; i < params.wan_nodes; ++i) {
    const NodeId lo = std::max<NodeId>(0, i - params.wan_locality_window);
    const NodeId parent = static_cast<NodeId>(rng.NextInt(lo, i - 1));
    CASCACHE_CHECK_OK(topo.graph.AddEdge(
        i, parent,
        JitteredDelay(&rng, params.wan_mean_delay, params.delay_jitter)));
  }

  // 2. WAN redundancy links between nearby (in index) WAN node pairs.
  int added = 0;
  int attempts = 0;
  const int max_attempts = 200 * std::max(1, params.wan_redundancy_edges);
  while (added < params.wan_redundancy_edges && attempts < max_attempts) {
    ++attempts;
    const NodeId u =
        static_cast<NodeId>(rng.NextInt(0, params.wan_nodes - 1));
    const NodeId lo = std::max<NodeId>(0, u - params.wan_redundancy_span);
    const NodeId hi = std::min<NodeId>(params.wan_nodes - 1,
                                       u + params.wan_redundancy_span);
    const NodeId v = static_cast<NodeId>(rng.NextInt(lo, hi));
    if (u == v || topo.graph.HasEdge(u, v)) continue;
    CASCACHE_CHECK_OK(topo.graph.AddEdge(
        u, v,
        JitteredDelay(&rng, params.wan_mean_delay, params.delay_jitter)));
    ++added;
  }
  if (added < params.wan_redundancy_edges) {
    return util::Status::InvalidArgument(
        "could not place requested WAN redundancy edges; "
        "reduce wan_redundancy_edges or raise wan_redundancy_span");
  }

  // 3. MAN uplinks: each MAN node attaches to a random WAN node.
  topo.man_attach.reserve(topo.man_ids.size());
  for (NodeId m : topo.man_ids) {
    const NodeId attach =
        static_cast<NodeId>(rng.NextInt(0, params.wan_nodes - 1));
    topo.man_attach.push_back(attach);
    CASCACHE_CHECK_OK(topo.graph.AddEdge(
        m, attach,
        JitteredDelay(&rng, params.man_mean_delay, params.delay_jitter)));
  }

  // 4. MAN redundancy links between MAN nodes whose attach points are
  // close (same metropolitan region).
  added = 0;
  attempts = 0;
  const int man_attempts = 400 * std::max(1, params.man_redundancy_edges);
  while (added < params.man_redundancy_edges && attempts < man_attempts) {
    ++attempts;
    const size_t a = static_cast<size_t>(rng.NextInt(
        0, static_cast<int64_t>(topo.man_ids.size()) - 1));
    const size_t b = static_cast<size_t>(rng.NextInt(
        0, static_cast<int64_t>(topo.man_ids.size()) - 1));
    if (a == b) continue;
    if (std::abs(topo.man_attach[a] - topo.man_attach[b]) >
        params.wan_redundancy_span) {
      continue;
    }
    const NodeId u = topo.man_ids[a];
    const NodeId v = topo.man_ids[b];
    if (topo.graph.HasEdge(u, v)) continue;
    CASCACHE_CHECK_OK(topo.graph.AddEdge(
        u, v,
        JitteredDelay(&rng, params.man_mean_delay, params.delay_jitter)));
    ++added;
  }
  if (added < params.man_redundancy_edges) {
    return util::Status::InvalidArgument(
        "could not place requested MAN redundancy edges");
  }

  CASCACHE_CHECK(topo.graph.IsConnected());
  return topo;
}

}  // namespace cascache::topology
