#include "topology/tree.h"

#include <cmath>

namespace cascache::topology {

int TreeTopology::depth() const {
  int max_level = 0;
  for (int l : level) max_level = std::max(max_level, l);
  return max_level + 1;
}

util::StatusOr<TreeTopology> BuildTree(const TreeParams& params) {
  if (params.depth < 1) {
    return util::Status::InvalidArgument("tree depth must be >= 1");
  }
  if (params.fanout < 1) {
    return util::Status::InvalidArgument("fanout must be >= 1");
  }
  if (params.base_delay <= 0.0 || params.growth <= 0.0) {
    return util::Status::InvalidArgument("delays must be positive");
  }

  // Count nodes: sum of fanout^i for i in [0, depth).
  int64_t total = 0;
  int64_t level_count = 1;
  for (int i = 0; i < params.depth; ++i) {
    total += level_count;
    level_count *= params.fanout;
    if (total > 5'000'000) {
      return util::Status::InvalidArgument("tree too large");
    }
  }

  TreeTopology topo;
  topo.graph = Graph(static_cast<int>(total));
  topo.root = 0;
  topo.level.assign(static_cast<size_t>(total), 0);
  topo.parent.assign(static_cast<size_t>(total), kInvalidNode);

  // Breadth-first construction: node ids are assigned level by level from
  // the root. first[i] = id of the first node at tree-depth i (root = 0).
  std::vector<int64_t> first(static_cast<size_t>(params.depth) + 1, 0);
  int64_t width = 1;
  for (int i = 0; i < params.depth; ++i) {
    first[static_cast<size_t>(i) + 1] = first[static_cast<size_t>(i)] + width;
    width *= params.fanout;
  }

  for (int d = 0; d < params.depth; ++d) {
    const int level = params.depth - 1 - d;  // Root has the highest level.
    const int64_t begin = first[static_cast<size_t>(d)];
    const int64_t end = first[static_cast<size_t>(d) + 1];
    for (int64_t v = begin; v < end; ++v) {
      topo.level[static_cast<size_t>(v)] = level;
      if (level == 0) topo.leaves.push_back(static_cast<NodeId>(v));
      if (d + 1 < params.depth) {
        // Link to children. A level-(level-1) child connects to this node
        // with delay g^(level-1) * d (delay indexed by the *lower* end).
        const double delay =
            params.base_delay * std::pow(params.growth, level - 1);
        const int64_t child_begin =
            first[static_cast<size_t>(d) + 1] +
            (v - begin) * params.fanout;
        for (int c = 0; c < params.fanout; ++c) {
          const NodeId child = static_cast<NodeId>(child_begin + c);
          topo.parent[static_cast<size_t>(child)] = static_cast<NodeId>(v);
          CASCACHE_CHECK_OK(
              topo.graph.AddEdge(static_cast<NodeId>(v), child, delay));
        }
      }
    }
  }

  topo.server_link_delay =
      params.base_delay * std::pow(params.growth, params.depth - 1);
  return topo;
}

}  // namespace cascache::topology
