#include "topology/graph.h"

#include <queue>
#include <string>

namespace cascache::topology {

Graph::Graph(int num_nodes) {
  CASCACHE_CHECK(num_nodes >= 0);
  adjacency_.resize(static_cast<size_t>(num_nodes));
}

uint64_t Graph::EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

util::Status Graph::AddEdge(NodeId u, NodeId v, double delay) {
  if (!IsValidNode(u) || !IsValidNode(v)) {
    return util::Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) {
    return util::Status::InvalidArgument("self-loop not allowed");
  }
  if (delay < 0.0) {
    return util::Status::InvalidArgument("negative link delay");
  }
  if (HasEdge(u, v)) {
    return util::Status::AlreadyExists("duplicate link " + std::to_string(u) +
                                       "-" + std::to_string(v));
  }
  adjacency_[static_cast<size_t>(u)].push_back({v, delay});
  adjacency_[static_cast<size_t>(v)].push_back({u, delay});
  edge_delay_[EdgeKey(u, v)] = delay;
  ++num_edges_;
  total_delay_ += delay;
  return util::Status::Ok();
}

const std::vector<Edge>& Graph::Neighbors(NodeId u) const {
  CASCACHE_CHECK(IsValidNode(u));
  return adjacency_[static_cast<size_t>(u)];
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (!IsValidNode(u) || !IsValidNode(v)) return false;
  return edge_delay_.count(EdgeKey(u, v)) > 0;
}

double Graph::EdgeDelay(NodeId u, NodeId v) const {
  auto it = edge_delay_.find(EdgeKey(u, v));
  CASCACHE_CHECK_MSG(it != edge_delay_.end(), "link does not exist");
  return it->second;
}

bool Graph::IsConnected() const {
  if (num_nodes() <= 1) return true;
  std::vector<bool> seen(static_cast<size_t>(num_nodes()), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  int visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Edge& e : adjacency_[static_cast<size_t>(u)]) {
      if (!seen[static_cast<size_t>(e.to)]) {
        seen[static_cast<size_t>(e.to)] = true;
        ++visited;
        frontier.push(e.to);
      }
    }
  }
  return visited == num_nodes();
}

}  // namespace cascache::topology
