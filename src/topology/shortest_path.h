#ifndef CASCACHE_TOPOLOGY_SHORTEST_PATH_H_
#define CASCACHE_TOPOLOGY_SHORTEST_PATH_H_

#include <vector>

#include "topology/graph.h"

namespace cascache::topology {

/// Shortest-path tree rooted at a node, produced by Dijkstra's algorithm.
/// The paper routes every request along the shortest-path tree rooted at
/// the origin server's attach node (§3.2), so this structure *is* the
/// distribution tree of §2.
struct ShortestPathTree {
  NodeId root = kInvalidNode;
  /// dist[v]: total delay from v to the root; +inf if unreachable.
  std::vector<double> dist;
  /// parent[v]: next hop from v toward the root; kInvalidNode for the root
  /// itself and for unreachable nodes.
  std::vector<NodeId> parent;
  /// hops[v]: link count from v to the root; -1 if unreachable.
  std::vector<int> hops;

  bool Reachable(NodeId v) const;

  /// Node sequence from `from` to the root, inclusive of both endpoints.
  /// `from` must be reachable.
  std::vector<NodeId> PathToRoot(NodeId from) const;
};

/// Runs Dijkstra from `root`. Ties are broken deterministically by node id
/// (smaller parent id preferred) so generated topologies route identically
/// across runs.
ShortestPathTree BuildShortestPathTree(const Graph& graph, NodeId root);

/// All-pairs shortest-path delays via repeated Dijkstra; O(V·E log V).
/// Intended for topology statistics and small-graph test oracles.
std::vector<std::vector<double>> AllPairsShortestDelays(const Graph& graph);

}  // namespace cascache::topology

#endif  // CASCACHE_TOPOLOGY_SHORTEST_PATH_H_
