#ifndef CASCACHE_TOPOLOGY_GRAPH_H_
#define CASCACHE_TOPOLOGY_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace cascache::topology {

/// Identifier of a node (cache / router) in the network graph.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Outgoing half of an undirected link.
struct Edge {
  NodeId to = kInvalidNode;
  double delay = 0.0;  ///< Base delay for an average-size object (seconds).
};

/// Undirected weighted graph modeling the cascaded-caching network
/// (paper §2: G=(V,E) with per-link costs). Node count is fixed at
/// construction; links carry the delay of transferring an average-size
/// object, which the cost model scales by object size.
class Graph {
 public:
  explicit Graph(int num_nodes);

  /// Adds an undirected link. Fails on self-loops, out-of-range endpoints,
  /// duplicate links, or negative delay.
  util::Status AddEdge(NodeId u, NodeId v, double delay);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  size_t num_edges() const { return num_edges_; }

  bool IsValidNode(NodeId v) const { return v >= 0 && v < num_nodes(); }

  const std::vector<Edge>& Neighbors(NodeId u) const;

  bool HasEdge(NodeId u, NodeId v) const;

  /// Delay of the link (u,v); the link must exist.
  double EdgeDelay(NodeId u, NodeId v) const;

  /// True if every node is reachable from node 0 (BFS). Empty graphs and
  /// single-node graphs are connected.
  bool IsConnected() const;

  /// Sum and mean of all link delays (each undirected link counted once).
  double TotalDelay() const { return total_delay_; }
  double MeanDelay() const {
    return num_edges_ == 0 ? 0.0 : total_delay_ / static_cast<double>(num_edges_);
  }

 private:
  static uint64_t EdgeKey(NodeId u, NodeId v);

  std::vector<std::vector<Edge>> adjacency_;
  std::unordered_map<uint64_t, double> edge_delay_;
  size_t num_edges_ = 0;
  double total_delay_ = 0.0;
};

}  // namespace cascache::topology

#endif  // CASCACHE_TOPOLOGY_GRAPH_H_
