#ifndef CASCACHE_TOPOLOGY_ROUTING_H_
#define CASCACHE_TOPOLOGY_ROUTING_H_

#include <unordered_map>
#include <vector>

#include "topology/graph.h"
#include "topology/shortest_path.h"

namespace cascache::topology {

/// Per-destination routing built from shortest-path trees (the paper's
/// distribution trees, §2 and §3.2). Trees are computed lazily and cached,
/// one per distinct destination (server attach node), since the number of
/// distinct server locations is small compared to request volume.
///
/// Thread safety: the non-const accessors mutate the tree cache and must
/// not race. The const overloads never mutate — after every destination
/// in use has been Precompute()d (the Network does this at build time),
/// any number of threads may query them concurrently.
class RoutingTable {
 public:
  explicit RoutingTable(const Graph* graph);

  /// The shortest-path tree rooted at `dest` (computed on first use).
  const ShortestPathTree& TreeFor(NodeId dest);

  /// Read-only lookup; the tree must have been computed already.
  const ShortestPathTree& TreeFor(NodeId dest) const;

  /// Builds and caches the tree for `dest` so the const accessors can
  /// serve it without mutation.
  void Precompute(NodeId dest) { TreeFor(dest); }

  /// Node sequence from `from` to `dest` along the distribution tree,
  /// inclusive of both endpoints. `from` must be able to reach `dest`.
  std::vector<NodeId> Path(NodeId from, NodeId dest);
  std::vector<NodeId> Path(NodeId from, NodeId dest) const;

  /// Total delay from `from` to `dest` along the tree.
  double Delay(NodeId from, NodeId dest);
  double Delay(NodeId from, NodeId dest) const;

  /// Hop count from `from` to `dest` along the tree.
  int Hops(NodeId from, NodeId dest);
  int Hops(NodeId from, NodeId dest) const;

  size_t num_cached_trees() const { return trees_.size(); }

 private:
  const Graph* graph_;
  std::unordered_map<NodeId, ShortestPathTree> trees_;
};

}  // namespace cascache::topology

#endif  // CASCACHE_TOPOLOGY_ROUTING_H_
