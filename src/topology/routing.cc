#include "topology/routing.h"

namespace cascache::topology {

RoutingTable::RoutingTable(const Graph* graph) : graph_(graph) {
  CASCACHE_CHECK(graph != nullptr);
}

const ShortestPathTree& RoutingTable::TreeFor(NodeId dest) {
  auto it = trees_.find(dest);
  if (it == trees_.end()) {
    it = trees_.emplace(dest, BuildShortestPathTree(*graph_, dest)).first;
  }
  return it->second;
}

const ShortestPathTree& RoutingTable::TreeFor(NodeId dest) const {
  auto it = trees_.find(dest);
  CASCACHE_CHECK_MSG(it != trees_.end(),
                     "tree not precomputed for const access");
  return it->second;
}

std::vector<NodeId> RoutingTable::Path(NodeId from, NodeId dest) {
  return TreeFor(dest).PathToRoot(from);
}

std::vector<NodeId> RoutingTable::Path(NodeId from, NodeId dest) const {
  return TreeFor(dest).PathToRoot(from);
}

double RoutingTable::Delay(NodeId from, NodeId dest) {
  Precompute(dest);
  return static_cast<const RoutingTable*>(this)->Delay(from, dest);
}

double RoutingTable::Delay(NodeId from, NodeId dest) const {
  const ShortestPathTree& tree = TreeFor(dest);
  CASCACHE_CHECK(tree.Reachable(from));
  return tree.dist[static_cast<size_t>(from)];
}

int RoutingTable::Hops(NodeId from, NodeId dest) {
  Precompute(dest);
  return static_cast<const RoutingTable*>(this)->Hops(from, dest);
}

int RoutingTable::Hops(NodeId from, NodeId dest) const {
  const ShortestPathTree& tree = TreeFor(dest);
  CASCACHE_CHECK(tree.Reachable(from));
  return tree.hops[static_cast<size_t>(from)];
}

}  // namespace cascache::topology
