#include "topology/shortest_path.h"

#include <limits>
#include <queue>

namespace cascache::topology {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool ShortestPathTree::Reachable(NodeId v) const {
  return v >= 0 && static_cast<size_t>(v) < dist.size() &&
         dist[static_cast<size_t>(v)] < kInf;
}

std::vector<NodeId> ShortestPathTree::PathToRoot(NodeId from) const {
  CASCACHE_CHECK(Reachable(from));
  std::vector<NodeId> path;
  NodeId v = from;
  while (v != kInvalidNode) {
    path.push_back(v);
    if (v == root) break;
    v = parent[static_cast<size_t>(v)];
  }
  CASCACHE_CHECK_MSG(path.back() == root, "broken parent chain");
  return path;
}

ShortestPathTree BuildShortestPathTree(const Graph& graph, NodeId root) {
  CASCACHE_CHECK(graph.IsValidNode(root));
  const size_t n = static_cast<size_t>(graph.num_nodes());
  ShortestPathTree tree;
  tree.root = root;
  tree.dist.assign(n, kInf);
  tree.parent.assign(n, kInvalidNode);
  tree.hops.assign(n, -1);

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  tree.dist[static_cast<size_t>(root)] = 0.0;
  tree.hops[static_cast<size_t>(root)] = 0;
  queue.emplace(0.0, root);

  std::vector<bool> done(n, false);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (done[static_cast<size_t>(u)]) continue;
    done[static_cast<size_t>(u)] = true;
    for (const Edge& e : graph.Neighbors(u)) {
      const size_t v = static_cast<size_t>(e.to);
      if (done[v]) continue;
      const double nd = d + e.delay;
      const bool better = nd < tree.dist[v];
      // Deterministic tie-break: equal distance, prefer the smaller parent.
      const bool tie = nd == tree.dist[v] && tree.parent[v] != kInvalidNode &&
                       u < tree.parent[v];
      if (better || tie) {
        tree.dist[v] = nd;
        tree.parent[v] = u;
        tree.hops[v] = tree.hops[static_cast<size_t>(u)] + 1;
        queue.emplace(nd, e.to);
      }
    }
  }
  return tree;
}

std::vector<std::vector<double>> AllPairsShortestDelays(const Graph& graph) {
  const int n = graph.num_nodes();
  std::vector<std::vector<double>> dist(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    dist[static_cast<size_t>(v)] = BuildShortestPathTree(graph, v).dist;
  }
  return dist;
}

}  // namespace cascache::topology
