#ifndef CASCACHE_TOPOLOGY_TIERS_H_
#define CASCACHE_TOPOLOGY_TIERS_H_

#include <cstdint>
#include <vector>

#include "topology/graph.h"
#include "util/status.h"

namespace cascache::topology {

/// Parameters of the Tiers-style random two-level topology used for the
/// en-route architecture (paper §3.2, Table 1). The generator reproduces
/// the structural statistics the paper relies on: a connected WAN backbone,
/// MAN nodes hanging off WAN attach points, a WAN:MAN mean-delay ratio of
/// roughly 8:1, and (with the defaults) 100 nodes and 173 links.
struct TiersParams {
  int wan_nodes = 50;
  int man_nodes = 50;
  /// Extra WAN-WAN links beyond the spanning tree (redundancy).
  int wan_redundancy_edges = 40;
  /// Extra MAN-MAN links between MANs sharing a WAN attach point region.
  int man_redundancy_edges = 34;
  /// Target mean one-way delay of WAN links, seconds (Table 1: 0.146 s).
  double wan_mean_delay = 0.146;
  /// Target mean one-way delay of MAN links, seconds (Table 1: 0.018 s).
  double man_mean_delay = 0.018;
  /// Per-link delays are uniform in mean*(1 +/- jitter).
  double delay_jitter = 0.5;
  /// Spanning-tree locality window: WAN node i attaches to a parent in
  /// [i-window, i-1]. Small windows yield chain-like backbones with long
  /// routing paths (the paper reports ~12-hop client-server paths).
  int wan_locality_window = 2;
  /// Redundancy links connect WAN nodes at most this far apart in index,
  /// preserving the long-path structure while adding alternatives.
  /// The (2, 3) defaults land the mean client-server path at ~12 hops,
  /// matching the paper's sample topology.
  int wan_redundancy_span = 3;
  uint64_t seed = 1;
};

/// Generated en-route topology. Node ids [0, wan_nodes) are WAN routers;
/// [wan_nodes, wan_nodes + man_nodes) are MAN nodes. An en-route cache sits
/// at every node; origin servers and clients are co-located with MAN nodes
/// only (assignment happens in sim::Network).
struct TiersTopology {
  Graph graph{0};
  std::vector<NodeId> wan_ids;
  std::vector<NodeId> man_ids;
  /// Attach point (WAN node) of each MAN node, parallel to man_ids.
  std::vector<NodeId> man_attach;

  bool IsWan(NodeId v) const {
    return v >= 0 && static_cast<size_t>(v) < wan_ids.size();
  }

  /// Mean delay over links whose both endpoints are WAN nodes.
  double MeanWanLinkDelay() const;
  /// Mean delay over links with at least one MAN endpoint.
  double MeanManLinkDelay() const;
};

/// Generates a Tiers-style topology; deterministic in `params.seed`.
/// Fails if the parameters are inconsistent (e.g. more redundancy edges
/// than node pairs can host).
util::StatusOr<TiersTopology> GenerateTiers(const TiersParams& params);

}  // namespace cascache::topology

#endif  // CASCACHE_TOPOLOGY_TIERS_H_
