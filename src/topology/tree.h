#ifndef CASCACHE_TOPOLOGY_TREE_H_
#define CASCACHE_TOPOLOGY_TREE_H_

#include <vector>

#include "topology/graph.h"
#include "util/status.h"

namespace cascache::topology {

/// Parameters of the hierarchical caching topology (paper §3.2, Figure 5):
/// a full O-ary tree of caches. Leaves are level 0, the root is level
/// depth-1. The link between a level-i node and its parent has delay
/// g^i * d; the (virtual) link between the root and an origin server has
/// delay g^(depth-1) * d.
struct TreeParams {
  int depth = 4;           ///< Number of cache levels (root at depth-1).
  int fanout = 3;          ///< Children per internal node (paper's O).
  double base_delay = 0.008;  ///< d, seconds.
  double growth = 5.0;        ///< g, delay growth factor per level.
};

/// A full O-ary cache hierarchy. Node 0 is the root; children of node v
/// occupy consecutive ids, breadth-first.
struct TreeTopology {
  Graph graph{0};
  NodeId root = 0;
  std::vector<NodeId> leaves;
  /// level[v]: 0 for leaves, depth-1 for the root.
  std::vector<int> level;
  /// parent[v]: kInvalidNode for the root.
  std::vector<NodeId> parent;
  /// Delay of the root <-> origin-server virtual link: g^(depth-1) * d.
  double server_link_delay = 0.0;

  int depth() const;
};

/// Builds a full O-ary tree; fails if depth < 1 or fanout < 1 or the
/// delays are non-positive.
util::StatusOr<TreeTopology> BuildTree(const TreeParams& params);

}  // namespace cascache::topology

#endif  // CASCACHE_TOPOLOGY_TREE_H_
