#ifndef CASCACHE_CORE_PLACEMENT_H_
#define CASCACHE_CORE_PLACEMENT_H_

#include <vector>

#include "util/status.h"

namespace cascache::core {

/// Input to the object-placement optimization (paper §2.1/§2.2, Definition
/// 1). Index i (0-based) corresponds to cache A_{i+1} on the delivery path
/// A_0 (serving node) -> A_1 -> ... -> A_n (requesting cache):
///
///   f[i] : access frequency of the object observed at A_{i+1}
///   m[i] : miss penalty, the summed link costs from A_0 to A_{i+1}
///   l[i] : cost loss of evicting enough objects at A_{i+1} to fit it
///
/// All vectors must have equal length n >= 0; f must be non-increasing
/// (requests seen downstream are a subset of those seen upstream),
/// m[i] >= 0 and l[i] >= 0. f_{n+1} is implicitly 0.
struct PlacementInput {
  std::vector<double> f;
  std::vector<double> m;
  std::vector<double> l;

  size_t n() const { return f.size(); }
};

/// Solution of the n-optimization problem: the caches to store the object
/// in and the resulting reduction in total access cost.
struct PlacementResult {
  /// Optimal Δcost value; always >= 0 (the empty placement scores 0).
  double gain = 0.0;
  /// Selected indices into the input arrays, strictly ascending. Empty
  /// means "cache nowhere".
  std::vector<int> selected;
};

/// Validates a PlacementInput: equal lengths, non-negative m/l, and
/// non-increasing non-negative f.
util::Status ValidatePlacementInput(const PlacementInput& input);

/// Reusable DP working set for SolvePlacementDPInto: the opt/last tables
/// grow to the largest path seen and are then reused allocation-free.
struct PlacementScratch {
  std::vector<double> opt;
  std::vector<int> last;
};

/// Solves the n-optimization problem exactly with the paper's dynamic
/// program (Theorem 1 recurrences) in O(n^2) time and O(n) space. The
/// input is not validated (hot path); call ValidatePlacementInput at API
/// boundaries. Correct for arbitrary (not necessarily monotone) f, since
/// Theorem 1's cut-and-paste argument does not use monotonicity.
PlacementResult SolvePlacementDP(const PlacementInput& input);

/// Allocation-free variant for the request hot path: identical results,
/// with the DP tables and the selection buffer reused across calls.
/// `result->selected` is cleared and refilled; `result->gain` rewritten.
void SolvePlacementDPInto(const PlacementInput& input,
                          PlacementScratch* scratch, PlacementResult* result);

/// Exhaustive O(2^n) reference solver for testing; requires n <= 24.
/// Ties are broken toward the lexicographically smallest selection so
/// results are deterministic.
PlacementResult SolvePlacementBruteForce(const PlacementInput& input);

/// Evaluates Δcost(n : selection) for an arbitrary selection (ascending
/// indices); the objective function of Definition 1 with k = n.
double EvaluatePlacement(const PlacementInput& input,
                         const std::vector<int>& selection);

/// Theorem 2 predicate: an index can appear in an optimal solution only if
/// caching is locally beneficial, i.e. f·m >= l. Used to prune candidates
/// before running the DP.
inline bool LocallyBeneficial(double f, double m, double l) {
  return f * m >= l;
}

}  // namespace cascache::core

#endif  // CASCACHE_CORE_PLACEMENT_H_
