#include "core/placement.h"

#include <algorithm>

#include "util/check.h"

namespace cascache::core {

util::Status ValidatePlacementInput(const PlacementInput& input) {
  const size_t n = input.f.size();
  if (input.m.size() != n || input.l.size() != n) {
    return util::Status::InvalidArgument("f, m, l must have equal length");
  }
  for (size_t i = 0; i < n; ++i) {
    if (input.f[i] < 0.0 || input.m[i] < 0.0 || input.l[i] < 0.0) {
      return util::Status::InvalidArgument("negative f/m/l value");
    }
    if (i > 0 && input.f[i] > input.f[i - 1]) {
      return util::Status::InvalidArgument(
          "access frequencies must be non-increasing along the path");
    }
  }
  return util::Status::Ok();
}

PlacementResult SolvePlacementDP(const PlacementInput& input) {
  PlacementScratch scratch;
  PlacementResult result;
  SolvePlacementDPInto(input, &scratch, &result);
  return result;
}

void SolvePlacementDPInto(const PlacementInput& input,
                          PlacementScratch* scratch,
                          PlacementResult* result) {
  const int n = static_cast<int>(input.n());
  result->gain = 0.0;
  result->selected.clear();
  if (n == 0) return;

  // opt[k] = OPT_k, the best Δcost restricted to indices {1..k} with the
  // boundary frequency f_{k+1}; last[k] = L_k, the largest index in that
  // optimum (-1 if empty). Indices here are 1-based as in the paper;
  // array slot i-1 holds the parameters of A_i.
  std::vector<double>& opt = scratch->opt;
  std::vector<int>& last = scratch->last;
  opt.assign(static_cast<size_t>(n) + 1, 0.0);
  last.assign(static_cast<size_t>(n) + 1, -1);

  for (int k = 1; k <= n; ++k) {
    const double f_k1 = (k < n) ? input.f[static_cast<size_t>(k)] : 0.0;
    double best = 0.0;
    int best_i = -1;
    for (int i = 1; i <= k; ++i) {
      const double candidate =
          opt[static_cast<size_t>(i - 1)] +
          (input.f[static_cast<size_t>(i - 1)] - f_k1) *
              input.m[static_cast<size_t>(i - 1)] -
          input.l[static_cast<size_t>(i - 1)];
      if (candidate > best) {
        best = candidate;
        best_i = i;
      }
    }
    opt[static_cast<size_t>(k)] = best;
    last[static_cast<size_t>(k)] = best_i;
  }

  result->gain = opt[static_cast<size_t>(n)];
  // Backtrack: v_r = L_n, then v_{j-1} = L_{v_j - 1}.
  int v = last[static_cast<size_t>(n)];
  while (v > 0) {
    result->selected.push_back(v - 1);  // Store 0-based.
    v = last[static_cast<size_t>(v - 1)];
  }
  std::reverse(result->selected.begin(), result->selected.end());
}

double EvaluatePlacement(const PlacementInput& input,
                         const std::vector<int>& selection) {
  const size_t n = input.n();
  double total = 0.0;
  for (size_t j = 0; j < selection.size(); ++j) {
    const int v = selection[j];
    CASCACHE_CHECK(v >= 0 && static_cast<size_t>(v) < n);
    if (j + 1 < selection.size()) {
      CASCACHE_CHECK_MSG(selection[j + 1] > v, "selection must be ascending");
    }
    // f of the next selected index downstream, or f_{n+1} = 0.
    const double f_next = (j + 1 < selection.size())
                              ? input.f[static_cast<size_t>(selection[j + 1])]
                              : 0.0;
    total += (input.f[static_cast<size_t>(v)] - f_next) *
                 input.m[static_cast<size_t>(v)] -
             input.l[static_cast<size_t>(v)];
  }
  return total;
}

PlacementResult SolvePlacementBruteForce(const PlacementInput& input) {
  const size_t n = input.n();
  CASCACHE_CHECK_MSG(n <= 24, "brute force limited to n <= 24");
  PlacementResult best;  // Empty selection scores 0.
  std::vector<int> selection;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    selection.clear();
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) selection.push_back(static_cast<int>(i));
    }
    const double gain = EvaluatePlacement(input, selection);
    if (gain > best.gain ||
        (gain == best.gain && !best.selected.empty() &&
         selection < best.selected)) {
      best.gain = gain;
      best.selected = selection;
    }
  }
  return best;
}

}  // namespace cascache::core
