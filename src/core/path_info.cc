#include "core/path_info.h"

#include "util/check.h"

namespace cascache::core {

PlacementInput PathInfo::ToPlacementInput(std::vector<int>* origin) const {
  PlacementInput input;
  FillPlacementInput(&input, origin);
  return input;
}

void PathInfo::FillPlacementInput(PlacementInput* input,
                                  std::vector<int>* origin) const {
  CASCACHE_CHECK(input != nullptr);
  CASCACHE_CHECK(origin != nullptr);
  origin->clear();
  input->f.clear();
  input->m.clear();
  input->l.clear();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PathNodeInfo& info = nodes[i];
    if (!IsCandidate(info)) continue;
    input->f.push_back(info.frequency);
    input->m.push_back(info.miss_penalty);
    input->l.push_back(info.cost_loss);
    origin->push_back(static_cast<int>(i));
  }
  // Monotone clamp (see header): enforce f non-increasing toward A_n.
  for (size_t i = input->f.size(); i >= 2; --i) {
    input->f[i - 2] = std::max(input->f[i - 2], input->f[i - 1]);
  }
}

}  // namespace cascache::core
