#ifndef CASCACHE_CORE_PATH_INFO_H_
#define CASCACHE_CORE_PATH_INFO_H_

#include <vector>

#include "core/placement.h"
#include "topology/graph.h"

namespace cascache::core {

/// Per-cache record piggybacked on a request message as it travels from
/// the requesting cache toward the serving node (paper §2.3): the
/// frequency, miss penalty and eviction cost loss of the requested object
/// with respect to that cache, plus the d-cache tag (§2.4) indicating
/// whether the node holds the object's descriptor at all.
struct PathNodeInfo {
  topology::NodeId node = topology::kInvalidNode;
  double frequency = 0.0;     ///< f_i (includes the current access).
  double miss_penalty = 0.0;  ///< m_i: summed link costs from A_0 to A_i.
  double cost_loss = 0.0;     ///< l_i: greedy NCL eviction loss.
  /// False if the node tagged the request "no descriptor" (§2.4); such
  /// nodes are removed from the candidate set.
  bool has_descriptor = false;
  /// False if the object cannot fit in the node's cache at all.
  bool feasible = false;
};

/// The assembled piggyback information for one request, ordered from A_1
/// (the cache adjacent to the serving node) to A_n (the requesting cache).
struct PathInfo {
  std::vector<PathNodeInfo> nodes;

  /// True for nodes that participate in the optimization: descriptor
  /// present and object insertable.
  static bool IsCandidate(const PathNodeInfo& info) {
    return info.has_descriptor && info.feasible;
  }

  /// Builds the PlacementInput over the candidate nodes. `origin[i]` is
  /// set to the index into `nodes` that PlacementInput slot i represents.
  ///
  /// Locally estimated frequencies can violate the f_1 >= ... >= f_n
  /// monotonicity the model assumes (an artifact of independent sliding
  /// windows); they are clamped upward from the client side so each
  /// upstream candidate reports at least its downstream successor's rate.
  PlacementInput ToPlacementInput(std::vector<int>* origin) const;

  /// Allocation-free variant for the request hot path: clears and refills
  /// caller-owned buffers instead of returning a fresh PlacementInput.
  /// Identical contents to ToPlacementInput.
  void FillPlacementInput(PlacementInput* input, std::vector<int>* origin)
      const;
};

}  // namespace cascache::core

#endif  // CASCACHE_CORE_PATH_INFO_H_
