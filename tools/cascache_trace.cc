// cascache_trace: offline trace utilities for the .cctr binary format.
//
//   cascache_trace convert <log.csv> <out.cctr>   # CSV request log -> v2
//   cascache_trace summarize <trace.cctr> [--epochs=N]  # logstats report
//   cascache_trace export-csv <trace.cctr> <out.csv>  # binary -> text
//
// `convert` ingests the WriteTraceCsv column layout
// (time,client,object,size,server — the shape a Boeing-style proxy log
// reduces to) and writes a v2 trace that cascache_sim --trace-in can
// memory-map. `summarize` streams the trace (any version, including
// procedural-catalog v3) once in bounded memory and prints
// cardinalities, the fitted Zipf slope — whole-trace and per epoch, so
// popularity drift is visible as a windowed-vs-aggregate gap — size
// percentiles and inter-arrival statistics, so a multi-gigabyte trace
// can be sanity-checked without loading it.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/trace_io.h"
#include "util/status.h"

namespace {

using namespace cascache;

int Usage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  cascache_trace convert <log.csv> <out.cctr>\n"
               "  cascache_trace summarize <trace.cctr> [--epochs=N]\n"
               "  cascache_trace export-csv <trace.cctr> <out.csv>\n"
               "\n"
               "convert     rewrite a CSV request log "
               "(time,client,object,size,server;\n"
               "            header row optional) as a v2 binary trace\n"
               "summarize   one-pass report: counts, cardinalities, Zipf "
               "slope\n"
               "            (whole-trace and per-epoch over N "
               "equal-request\n"
               "            windows; default 4, 0 disables), size "
               "percentiles,\n"
               "            inter-arrival statistics\n"
               "export-csv  dump a binary trace as text for external "
               "tooling\n"
               "            (timestamps rounded to microseconds)\n");
  return out == stderr ? 2 : 0;
}

util::Status RunConvert(const std::string& csv_path,
                        const std::string& out_path) {
  CASCACHE_RETURN_IF_ERROR(trace::ConvertCsvTrace(csv_path, out_path));
  CASCACHE_ASSIGN_OR_RETURN(const trace::TraceSummary summary,
                            trace::SummarizeTrace(out_path));
  std::fprintf(stderr,
               "converted %s -> %s (v%u, %" PRIu64 " requests, %u objects, "
               "%" PRIu64 " bytes)\n",
               csv_path.c_str(), out_path.c_str(), summary.format_version,
               summary.stats.num_requests, summary.stats.num_objects,
               summary.file_bytes);
  return util::Status::Ok();
}

util::Status RunSummarize(const std::string& path, uint32_t epochs) {
  trace::SummarizeOptions options;
  options.epochs = epochs;
  CASCACHE_ASSIGN_OR_RETURN(const trace::TraceSummary s,
                            trace::SummarizeTrace(path, options));
  const trace::TraceStats& st = s.stats;
  std::printf("trace:                 %s\n", path.c_str());
  std::printf("format version:        v%u\n", s.format_version);
  std::printf("file bytes:            %" PRIu64 "\n", s.file_bytes);
  std::printf("requests:              %" PRIu64 "\n", st.num_requests);
  std::printf("objects (catalog):     %u\n", st.num_objects);
  std::printf("objects referenced:    %u\n", st.num_objects_referenced);
  std::printf("clients active:        %u\n", st.num_clients_active);
  std::printf("duration:              %.3f s\n", st.duration_seconds);
  std::printf("bytes requested:       %" PRIu64 "\n",
              st.total_bytes_requested);
  std::printf("mean object size:      %.1f B\n", st.mean_object_size);
  std::printf("zipf slope (fit):      %.4f\n", st.estimated_zipf_theta);
  if (!s.epoch_zipf_theta.empty()) {
    std::printf("zipf slope per epoch: ");
    for (const double theta : s.epoch_zipf_theta) {
      std::printf(" %.4f", theta);
    }
    std::printf("\n");
  }
  std::printf("top-10%% request share: %.4f\n", st.top10pct_request_share);
  std::printf("object size p50/p90/p99/max: %" PRIu64 " / %" PRIu64
              " / %" PRIu64 " / %" PRIu64 " B\n",
              s.size_p50, s.size_p90, s.size_p99, s.size_max);
  std::printf("request size p50/p90/p99:    %" PRIu64 " / %" PRIu64
              " / %" PRIu64 " B\n",
              s.req_size_p50, s.req_size_p90, s.req_size_p99);
  std::printf("inter-arrival mean/stddev:   %.6f / %.6f s\n",
              s.interarrival_mean, s.interarrival_stddev);
  std::printf("inter-arrival min/max:       %.6f / %.6f s\n",
              s.interarrival_min, s.interarrival_max);
  return util::Status::Ok();
}

util::Status RunExportCsv(const std::string& trace_path,
                          const std::string& csv_path) {
  CASCACHE_ASSIGN_OR_RETURN(const trace::Workload workload,
                            trace::ReadTrace(trace_path));
  CASCACHE_RETURN_IF_ERROR(trace::WriteTraceCsv(workload, csv_path));
  std::fprintf(stderr, "exported %s -> %s (%zu requests)\n",
               trace_path.c_str(), csv_path.c_str(),
               workload.requests.size());
  return util::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    return Usage(stdout);
  }
  util::Status status;
  if (argc == 4 && std::strcmp(argv[1], "convert") == 0) {
    status = RunConvert(argv[2], argv[3]);
  } else if ((argc == 3 || argc == 4) &&
             std::strcmp(argv[1], "summarize") == 0) {
    uint32_t epochs = 4;
    if (argc == 4) {
      const char* arg = argv[3];
      if (std::strncmp(arg, "--epochs=", 9) != 0) return Usage(stderr);
      char* end = nullptr;
      const unsigned long value = std::strtoul(arg + 9, &end, 10);
      if (end == arg + 9 || *end != '\0' || value > 1024) return Usage(stderr);
      epochs = static_cast<uint32_t>(value);
    }
    status = RunSummarize(argv[2], epochs);
  } else if (argc == 4 && std::strcmp(argv[1], "export-csv") == 0) {
    status = RunExportCsv(argv[2], argv[3]);
  } else {
    return Usage(stderr);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
