// cascache_sim: the command-line driver for the cascaded-caching
// simulator. Runs any combination of architecture, caching schemes,
// cache sizes, workload parameters, cost model and coherency protocol,
// and prints a table of all paper metrics per (scheme, cache size) cell.
//
// Examples:
//   cascache_sim                                   # paper defaults, small
//   cascache_sim --arch=hier --schemes=lru,coordinated --cache=0.01,0.1
//   cascache_sim --trace-out=boeing.cctr --requests=22000000  # generate once
//   cascache_sim --trace-in=boeing.cctr --schemes=coordinated --cache=0.03
//   cascache_sim --coherency=ttl --ttl=600 --mutable=0.2
//   cascache_sim --cost=bandwidth --schemes=coordinated,lncr

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/experiment.h"
#include "sim/fault_plane.h"
#include "trace/trace_io.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace cascache;

/// Process peak resident set in KiB: VmHWM from /proc/self/status, with
/// ru_maxrss as the portable fallback. Printed when CASCACHE_PRINT_RSS
/// is set so the CI scale-smoke job can assert a ceiling without
/// depending on GNU time.
long PeakRssKb() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r"); f != nullptr) {
    char line[256];
    long kb = -1;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0) return kb;
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
  return -1;
}

util::StatusOr<schemes::SchemeSpec> ParseScheme(const std::string& name,
                                                int radius) {
  schemes::SchemeSpec spec;
  spec.modulo_radius = radius;
  if (name == "lru") {
    spec.kind = schemes::SchemeKind::kLru;
  } else if (name == "modulo") {
    spec.kind = schemes::SchemeKind::kModulo;
  } else if (name == "lncr") {
    spec.kind = schemes::SchemeKind::kLncr;
  } else if (name == "coordinated") {
    spec.kind = schemes::SchemeKind::kCoordinated;
  } else if (name == "gds") {
    spec.kind = schemes::SchemeKind::kGds;
  } else if (name == "lfu") {
    spec.kind = schemes::SchemeKind::kLfu;
  } else if (name == "static") {
    spec.kind = schemes::SchemeKind::kStatic;
  } else {
    return util::Status::InvalidArgument(
        "unknown scheme '" + name +
        "' (expected lru|modulo|lncr|coordinated|gds|lfu|static)");
  }
  return spec;
}

util::Status RunMain(int argc, char** argv) {
  util::FlagParser flags;
  std::string arch, schemes_text, cache_text, cost, coherency, trace_path,
      save_trace;
  uint64_t requests, objects, clients, servers, seed;
  int64_t radius;
  double theta, dcache_ratio, warmup, ttl, mutable_fraction, update_period,
      temporal, churn, level_growth;
  bool help;

  flags.AddBool("help", false, "print this help", &help);
  flags.AddString("arch", "enroute",
                  "architecture: enroute | hier", &arch);
  flags.AddString("schemes", "lru,modulo,lncr,coordinated",
                  "comma list of lru|modulo|lncr|coordinated|gds|lfu",
                  &schemes_text);
  flags.AddInt64("radius", 4, "MODULO cache radius", &radius);
  flags.AddString("cache", "0.01",
                  "comma list of relative cache sizes in (0,1]", &cache_text);
  flags.AddUint64("requests", 200'000, "synthetic trace length", &requests);
  flags.AddUint64("objects", 20'000, "synthetic object population", &objects);
  flags.AddUint64("clients", 1'000, "synthetic client population", &clients);
  flags.AddUint64("servers", 200, "origin server count", &servers);
  flags.AddDouble("theta", 0.8, "Zipf exponent of object popularity", &theta);
  flags.AddUint64("seed", 42, "workload seed", &seed);
  flags.AddString("trace", "",
                  "deprecated alias of --trace-in",
                  &trace_path);
  std::string trace_in, trace_out;
  bool trace_stream_release;
  flags.AddString("trace-in", "",
                  "replay a saved .cctr binary trace instead of generating "
                  "one (v2/v3 are mmap'd and shared across sweep cells; v1 "
                  "loads in RAM; env: CASCACHE_TRACE_IN)",
                  &trace_in);
  flags.AddString("trace-out", "",
                  "stream-generate the synthetic workload to this binary "
                  "trace file (v2; v3 with --catalog=procedural) in O(1) "
                  "memory and exit without simulating "
                  "(env: CASCACHE_TRACE_OUT)",
                  &trace_out);
  flags.AddBool("trace-stream-release", false,
                "advise-release consumed pages of the mapped --trace-in "
                "while replaying, keeping resident memory O(1) in trace "
                "length (forces --jobs=1)",
                &trace_stream_release);
  flags.AddString("save-trace", "",
                  "write the generated trace to this path (v2 format)",
                  &save_trace);
  flags.AddDouble("dcache-ratio", 3.0,
                  "d-cache descriptors per avg cached object", &dcache_ratio);
  flags.AddDouble("warmup", 0.5, "warm-up fraction of the trace", &warmup);
  flags.AddString("cost", "latency",
                  "optimized cost: latency | bandwidth | hops | weighted",
                  &cost);
  flags.AddString("coherency", "none",
                  "coherency protocol: none | ttl | invalidation",
                  &coherency);
  flags.AddDouble("ttl", 3600.0, "copy TTL in seconds", &ttl);
  flags.AddDouble("mutable", 0.0, "fraction of mutable objects",
                  &mutable_fraction);
  flags.AddDouble("update-period", 14400.0,
                  "mean seconds between updates of a mutable object",
                  &update_period);
  flags.AddDouble("temporal", 0.0,
                  "temporal-locality re-reference probability",
                  &temporal);
  flags.AddDouble("churn", 0.0, "popularity rank swaps per hour", &churn);
  // Non-stationary workload model (trace/workload_model.h). --workload
  // names the enabled components; the per-component knobs below only
  // take effect for components that are named.
  std::string workload_text, drift_mode_text, catalog_mode;
  double drift_half_life, flash_per_hour, flash_peak_share, flash_ramp,
      flash_decay, wl_diurnal_amplitude, wl_diurnal_period, session_prob,
      session_run, regional_bias;
  uint64_t flash_objects, regions;
  flags.AddString("workload", "static",
                  "workload model: static, or comma list of "
                  "drift|flash|diurnal|sessions|regional "
                  "(env: CASCACHE_WORKLOAD)",
                  &workload_text);
  flags.AddString("workload-drift-mode", "rotate",
                  "popularity drift mode: rotate | shuffle (shuffle is "
                  "limited to 2^24 objects)",
                  &drift_mode_text);
  flags.AddDouble("workload-drift-half-life", 3600.0,
                  "seconds for half the popularity mass to move",
                  &drift_half_life);
  flags.AddDouble("workload-flash-per-hour", 2.0,
                  "flash-crowd events per simulated hour",
                  &flash_per_hour);
  flags.AddUint64("workload-flash-objects", 64,
                  "objects in each flash crowd's hot set", &flash_objects);
  flags.AddDouble("workload-flash-peak-share", 0.3,
                  "peak fraction of traffic one flash event captures",
                  &flash_peak_share);
  flags.AddDouble("workload-flash-ramp", 300.0,
                  "flash ramp-up seconds to the peak", &flash_ramp);
  flags.AddDouble("workload-flash-decay", 1200.0,
                  "flash exponential decay constant in seconds",
                  &flash_decay);
  flags.AddDouble("workload-diurnal-amplitude", 0.5,
                  "workload arrival-rate sinusoid amplitude in [0,1)",
                  &wl_diurnal_amplitude);
  flags.AddDouble("workload-diurnal-period", 86400.0,
                  "workload diurnal cycle period in seconds",
                  &wl_diurnal_period);
  flags.AddDouble("workload-session-prob", 0.3,
                  "probability a fresh draw opens a sequential session",
                  &session_prob);
  flags.AddDouble("workload-session-run", 20.0,
                  "mean session length in requests (geometric)",
                  &session_run);
  flags.AddUint64("workload-regions", 8,
                  "client regions for regional skew (region = client mod "
                  "regions)",
                  &regions);
  flags.AddDouble("workload-regional-bias", 0.7,
                  "probability a request prefers its region's hot set",
                  &regional_bias);
  flags.AddString("catalog", "materialized",
                  "catalog storage: materialized | procedural (procedural "
                  "hashes sizes/servers from the id — O(1) memory at 10^8 "
                  "objects, v3 trace files; env: CASCACHE_CATALOG)",
                  &catalog_mode);
  flags.AddDouble("level-growth", 1.0,
                  "hierarchical per-level capacity growth (1 = uniform)",
                  &level_growth);
  int64_t jobs;
  flags.AddInt64("jobs", 0,
                 "worker threads for the sweep (0 = CASCACHE_JOBS env, "
                 "else hardware concurrency; 1 = sequential)",
                 &jobs);
  std::string results_csv, per_node_csv, trace_jsonl;
  double trace_sample;
  int64_t trace_ring;
  flags.AddString("results-csv", "",
                  "write the aggregate sweep results CSV to this path",
                  &results_csv);
  flags.AddString("per-node-csv", "",
                  "write per-node and per-level counter rows to this path",
                  &per_node_csv);
  flags.AddString("trace-jsonl", "",
                  "enable event tracing and write JSONL records to this path",
                  &trace_jsonl);
  flags.AddDouble("trace-sample", 1.0,
                  "fraction of requests traced (deterministic per seed)",
                  &trace_sample);
  flags.AddInt64("trace-ring", 4096,
                 "trace ring capacity: most recent records kept per cell",
                 &trace_ring);
  // Fault injection (sim/fault_plane.h). Precedence: defaults, then
  // --fault-config file, then CASCACHE_FAULT_* env vars, then explicit
  // --fault-* flags.
  std::string fault_config_path;
  uint64_t fault_seed;
  int64_t fault_max_retries;
  double fault_node_mtbf, fault_node_downtime, fault_link_mtbf,
      fault_link_downtime, fault_ascent_loss, fault_decision_loss,
      fault_timeout, fault_backoff, fault_disk_mtbf, fault_disk_downtime,
      fault_sibling_loss;
  bool fault_crash_cuts_routing;
  flags.AddString("fault-config", "",
                  "fault schedule file (key=value lines; see DESIGN.md)",
                  &fault_config_path);
  flags.AddUint64("fault-seed", 1, "seed of the fault streams", &fault_seed);
  flags.AddDouble("fault-node-mtbf", 0.0,
                  "mean seconds between node crashes (0 = none)",
                  &fault_node_mtbf);
  flags.AddDouble("fault-node-downtime", 30.0,
                  "mean seconds a crashed node stays down",
                  &fault_node_downtime);
  flags.AddDouble("fault-link-mtbf", 0.0,
                  "mean seconds between link outages (0 = none)",
                  &fault_link_mtbf);
  flags.AddDouble("fault-link-downtime", 30.0,
                  "mean seconds a failed link stays down",
                  &fault_link_downtime);
  flags.AddBool("fault-crash-cuts-routing", false,
                "crashed nodes also stop forwarding (requests detour)",
                &fault_crash_cuts_routing);
  flags.AddDouble("fault-ascent-loss", 0.0,
                  "probability a hop's piggyback entry is lost",
                  &fault_ascent_loss);
  flags.AddDouble("fault-decision-loss", 0.0,
                  "probability a hop's placement decision is lost",
                  &fault_decision_loss);
  flags.AddDouble("fault-timeout", 5.0,
                  "seconds before an unreachable request retries",
                  &fault_timeout);
  flags.AddInt64("fault-max-retries", 3,
                 "retries before a request is recorded as failed",
                 &fault_max_retries);
  flags.AddDouble("fault-backoff", 1.0,
                  "retry k backs off fault-backoff * 2^k seconds",
                  &fault_backoff);
  flags.AddDouble("fault-disk-mtbf", 0.0,
                  "mean seconds between disk-tier failures (0 = none); a "
                  "degraded node serves from RAM only (tiered) or proxies "
                  "(single-tier)",
                  &fault_disk_mtbf);
  flags.AddDouble("fault-disk-downtime", 60.0,
                  "mean seconds a failed disk tier stays degraded",
                  &fault_disk_downtime);
  flags.AddDouble("fault-sibling-loss", 0.0,
                  "probability a sibling probe or its reply is lost",
                  &fault_sibling_loss);
  // Two-tier stores (sim/node.h): a fast RAM tier over the full-capacity
  // slow tier, with promotion on hit and demotion on eviction.
  double tier_ram_fraction, tier_ram_hit_cost, tier_disk_hit_cost;
  uint64_t tier_ram_capacity;
  flags.AddDouble("tier-ram-fraction", 0.0,
                  "RAM tier capacity as a fraction of each node's cache "
                  "(0 = single-tier nodes)",
                  &tier_ram_fraction);
  flags.AddUint64("tier-ram-capacity", 0,
                  "absolute RAM tier capacity in bytes (overrides "
                  "--tier-ram-fraction)",
                  &tier_ram_capacity);
  flags.AddDouble("tier-ram-hit-cost", 0.0,
                  "service seconds charged per RAM-tier hit",
                  &tier_ram_hit_cost);
  flags.AddDouble("tier-disk-hit-cost", 0.0,
                  "service seconds charged per disk-tier hit",
                  &tier_disk_hit_cost);
  // Sibling cooperation (ICP-style): on a local miss, probe same-parent
  // siblings before ascending.
  bool sibling_probes;
  int64_t sibling_level, sibling_max_probes;
  uint64_t sibling_probe_bytes;
  double sibling_probe_cost;
  flags.AddBool("sibling-probes", false,
                "probe same-parent siblings on a local miss before "
                "ascending (hierarchical architecture)",
                &sibling_probes);
  flags.AddInt64("sibling-level", -1,
                 "tree level that probes siblings (-1 = every level)",
                 &sibling_level);
  flags.AddInt64("sibling-max-probes", 0,
                 "max siblings probed per miss (0 = all siblings)",
                 &sibling_max_probes);
  flags.AddUint64("sibling-probe-bytes", 16,
                  "message bytes per sibling probe (and per hit reply)",
                  &sibling_probe_bytes);
  flags.AddDouble("sibling-probe-cost", 0.0,
                  "service seconds a probe occupies the probed sibling",
                  &sibling_probe_cost);
  // Contention model (sim/queueing.h). Any nonzero knob switches the
  // replay to the event-driven scheduling policy.
  double service_lookup, service_store, service_dcache, link_bandwidth,
      arrival_rate, arrival_ramp;
  int64_t service_queue_cap;
  flags.AddDouble("service-lookup", 0.0,
                  "node service seconds per cache lookup (0 = analytic)",
                  &service_lookup);
  flags.AddDouble("service-store", 0.0,
                  "node service seconds per accepted placement",
                  &service_store);
  flags.AddDouble("service-dcache", 0.0,
                  "node service seconds per d-cache probe",
                  &service_dcache);
  flags.AddInt64("service-queue-cap", 0,
                 "node queue capacity in ops before shedding (0 = unbounded)",
                 &service_queue_cap);
  flags.AddDouble("link-bandwidth", 0.0,
                  "link bandwidth in bytes/second (0 = infinite)",
                  &link_bandwidth);
  flags.AddDouble("arrival-rate", 0.0,
                  "open-loop arrivals per second (0 = trace timestamps)",
                  &arrival_rate);
  flags.AddDouble("arrival-ramp", 0.0,
                  "arrival rate grows by this fraction per simulated second",
                  &arrival_ramp);
  double arrival_diurnal_amplitude, arrival_diurnal_period;
  flags.AddDouble("arrival-diurnal-amplitude", 0.0,
                  "open-loop arrival rate diurnal sinusoid amplitude in "
                  "[0,1) (requires --arrival-rate)",
                  &arrival_diurnal_amplitude);
  flags.AddDouble("arrival-diurnal-period", 86400.0,
                  "open-loop diurnal cycle period in simulated seconds",
                  &arrival_diurnal_period);

  CASCACHE_RETURN_IF_ERROR(flags.Parse(argc - 1, argv + 1));
  if (help) {
    std::fputs(flags.Usage(argv[0]).c_str(), stdout);
    std::exit(0);
  }

  sim::ExperimentConfig config;
  if (arch == "enroute") {
    config.network.architecture = sim::Architecture::kEnRoute;
  } else if (arch == "hier") {
    config.network.architecture = sim::Architecture::kHierarchical;
  } else {
    return util::Status::InvalidArgument("unknown --arch: " + arch);
  }

  config.schemes.clear();
  for (const std::string& name : util::SplitCommaList(schemes_text)) {
    CASCACHE_ASSIGN_OR_RETURN(schemes::SchemeSpec spec,
                              ParseScheme(name, static_cast<int>(radius)));
    config.schemes.push_back(spec);
  }
  if (config.schemes.empty()) {
    return util::Status::InvalidArgument("no schemes given");
  }

  config.cache_fractions.clear();
  for (const std::string& part : util::SplitCommaList(cache_text)) {
    config.cache_fractions.push_back(std::atof(part.c_str()));
  }

  config.workload.num_requests = requests;
  config.workload.num_objects = static_cast<uint32_t>(objects);
  config.workload.num_clients = static_cast<uint32_t>(clients);
  config.workload.num_servers = static_cast<uint32_t>(servers);
  config.workload.zipf_theta = theta;
  config.workload.seed = seed;
  config.workload.temporal_locality = temporal;
  config.workload.churn_swaps_per_hour = churn;

  // Workload model and catalog mode: explicit flag beats environment.
  if (!flags.WasSet("workload")) {
    if (const char* env = std::getenv("CASCACHE_WORKLOAD");
        env != nullptr && env[0] != '\0') {
      workload_text = env;
    }
  }
  if (!flags.WasSet("catalog")) {
    if (const char* env = std::getenv("CASCACHE_CATALOG");
        env != nullptr && env[0] != '\0') {
      catalog_mode = env;
    }
  }
  trace::WorkloadModelParams& model = config.workload.model;
  if (workload_text != "static" && !workload_text.empty()) {
    for (const std::string& part : util::SplitCommaList(workload_text)) {
      if (part == "drift") {
        if (drift_mode_text == "rotate") {
          model.drift_mode = trace::DriftMode::kRotate;
        } else if (drift_mode_text == "shuffle") {
          model.drift_mode = trace::DriftMode::kShuffle;
        } else {
          return util::Status::InvalidArgument(
              "unknown --workload-drift-mode: " + drift_mode_text +
              " (expected rotate|shuffle)");
        }
        model.drift_half_life_s = drift_half_life;
      } else if (part == "flash") {
        model.flash_rate_per_hour = flash_per_hour;
        model.flash_objects = static_cast<uint32_t>(flash_objects);
        model.flash_peak_share = flash_peak_share;
        model.flash_ramp_s = flash_ramp;
        model.flash_decay_s = flash_decay;
      } else if (part == "diurnal") {
        model.diurnal_amplitude = wl_diurnal_amplitude;
        model.diurnal_period_s = wl_diurnal_period;
      } else if (part == "sessions") {
        model.session_prob = session_prob;
        model.session_mean_run = session_run;
      } else if (part == "regional") {
        model.regions = static_cast<uint32_t>(regions);
        model.regional_bias = regional_bias;
      } else {
        return util::Status::InvalidArgument(
            "unknown --workload component '" + part +
            "' (expected static or a comma list of "
            "drift|flash|diurnal|sessions|regional)");
      }
    }
  }
  if (catalog_mode == "procedural") {
    config.workload.procedural_catalog = true;
  } else if (catalog_mode != "materialized") {
    return util::Status::InvalidArgument(
        "unknown --catalog: " + catalog_mode +
        " (expected materialized|procedural)");
  }
  config.sim.dcache_ratio = dcache_ratio;
  config.sim.warmup_fraction = warmup;
  config.sim.level_capacity_growth = level_growth;

  if (cost == "latency") {
    config.sim.cost_model.kind = sim::CostModelKind::kLatency;
  } else if (cost == "bandwidth") {
    config.sim.cost_model.kind = sim::CostModelKind::kBandwidth;
  } else if (cost == "hops") {
    config.sim.cost_model.kind = sim::CostModelKind::kHops;
  } else if (cost == "weighted") {
    config.sim.cost_model.kind = sim::CostModelKind::kWeighted;
  } else {
    return util::Status::InvalidArgument("unknown --cost: " + cost);
  }

  if (coherency == "none") {
    config.sim.coherency.protocol = sim::CoherencyProtocol::kNone;
  } else if (coherency == "ttl") {
    config.sim.coherency.protocol = sim::CoherencyProtocol::kTtl;
  } else if (coherency == "invalidation") {
    config.sim.coherency.protocol = sim::CoherencyProtocol::kInvalidation;
  } else {
    return util::Status::InvalidArgument("unknown --coherency: " + coherency);
  }
  config.sim.coherency.ttl = ttl;
  config.sim.coherency.mutable_fraction = mutable_fraction;
  config.sim.coherency.mean_update_period = update_period;
  config.jobs = static_cast<int>(jobs);
  config.sim.trace.enabled = !trace_jsonl.empty();
  config.sim.trace.sampling_rate = trace_sample;
  if (trace_ring < 1) {
    return util::Status::InvalidArgument("--trace-ring must be >= 1");
  }
  config.sim.trace.ring_capacity = static_cast<size_t>(trace_ring);
  // Key the trace sampler off the workload seed so a rerun with the same
  // flags samples the same requests.
  config.sim.trace.seed = seed;

  // Fault schedule, lowest to highest precedence source.
  sim::FaultScheduleConfig& fault_config = config.sim.faults;
  if (!fault_config_path.empty()) {
    CASCACHE_RETURN_IF_ERROR(
        sim::LoadFaultConfigFile(fault_config_path, &fault_config));
  }
  CASCACHE_RETURN_IF_ERROR(sim::ApplyFaultEnvOverrides(&fault_config));
  if (flags.WasSet("fault-seed")) fault_config.seed = fault_seed;
  if (flags.WasSet("fault-node-mtbf")) {
    fault_config.node_crash_mtbf = fault_node_mtbf;
  }
  if (flags.WasSet("fault-node-downtime")) {
    fault_config.node_downtime = fault_node_downtime;
  }
  if (flags.WasSet("fault-link-mtbf")) {
    fault_config.link_mtbf = fault_link_mtbf;
  }
  if (flags.WasSet("fault-link-downtime")) {
    fault_config.link_downtime = fault_link_downtime;
  }
  if (flags.WasSet("fault-crash-cuts-routing")) {
    fault_config.crash_cuts_routing = fault_crash_cuts_routing;
  }
  if (flags.WasSet("fault-ascent-loss")) {
    fault_config.ascent_loss_prob = fault_ascent_loss;
  }
  if (flags.WasSet("fault-decision-loss")) {
    fault_config.decision_loss_prob = fault_decision_loss;
  }
  if (flags.WasSet("fault-timeout")) {
    fault_config.request_timeout = fault_timeout;
  }
  if (flags.WasSet("fault-max-retries")) {
    fault_config.max_retries = static_cast<int>(fault_max_retries);
  }
  if (flags.WasSet("fault-backoff")) {
    fault_config.retry_backoff = fault_backoff;
  }
  if (flags.WasSet("fault-disk-mtbf")) {
    fault_config.disk_fail_mtbf = fault_disk_mtbf;
  }
  if (flags.WasSet("fault-disk-downtime")) {
    fault_config.disk_fail_downtime = fault_disk_downtime;
  }
  if (flags.WasSet("fault-sibling-loss")) {
    fault_config.sibling_loss_prob = fault_sibling_loss;
  }
  CASCACHE_RETURN_IF_ERROR(fault_config.Validate());

  config.sim.tier.ram_fraction = tier_ram_fraction;
  config.sim.tier.ram_capacity_bytes = tier_ram_capacity;
  config.sim.tier.ram_hit_cost = tier_ram_hit_cost;
  config.sim.tier.disk_hit_cost = tier_disk_hit_cost;
  CASCACHE_RETURN_IF_ERROR(config.sim.tier.Validate());
  config.sim.sibling.enabled = sibling_probes;
  config.sim.sibling.level = static_cast<int>(sibling_level);
  config.sim.sibling.max_probes = static_cast<int>(sibling_max_probes);
  config.sim.sibling.probe_bytes = sibling_probe_bytes;
  config.sim.sibling.probe_cost = sibling_probe_cost;
  CASCACHE_RETURN_IF_ERROR(config.sim.sibling.Validate());

  config.sim.contention.lookup_cost = service_lookup;
  config.sim.contention.store_cost = service_store;
  config.sim.contention.dcache_cost = service_dcache;
  if (service_queue_cap < 0) {
    return util::Status::InvalidArgument("--service-queue-cap must be >= 0");
  }
  config.sim.contention.node_queue_capacity =
      static_cast<uint32_t>(service_queue_cap);
  config.sim.contention.link_bandwidth = link_bandwidth;
  config.sim.contention.arrival_rate = arrival_rate;
  config.sim.contention.arrival_ramp = arrival_ramp;
  config.sim.contention.arrival_diurnal_amplitude = arrival_diurnal_amplitude;
  config.sim.contention.arrival_diurnal_period = arrival_diurnal_period;
  CASCACHE_RETURN_IF_ERROR(config.sim.contention.Validate());

  // Trace in/out resolution: explicit flags beat the deprecated --trace
  // alias beat the environment.
  if (trace_in.empty()) trace_in = trace_path;
  if (trace_in.empty()) {
    if (const char* env = std::getenv("CASCACHE_TRACE_IN");
        env != nullptr && env[0] != '\0') {
      trace_in = env;
    }
  }
  if (trace_out.empty()) {
    if (const char* env = std::getenv("CASCACHE_TRACE_OUT");
        env != nullptr && env[0] != '\0') {
      trace_out = env;
    }
  }

  // Generate-once mode: stream the synthetic workload to disk (bounded
  // blocks, O(1) resident memory) and exit; replay it later — and many
  // times — via --trace-in.
  if (!trace_out.empty()) {
    if (!trace_in.empty()) {
      return util::Status::InvalidArgument(
          "--trace-out is incompatible with --trace-in");
    }
    CASCACHE_RETURN_IF_ERROR(
        trace::GenerateWorkloadToFile(config.workload, trace_out));
    std::fprintf(stderr, "wrote %llu-request trace to %s\n",
                 static_cast<unsigned long long>(config.workload.num_requests),
                 trace_out.c_str());
    if (std::getenv("CASCACHE_PRINT_RSS") != nullptr) {
      std::fprintf(stderr, "peak_rss_kb=%ld\n", PeakRssKb());
    }
    return util::Status::Ok();
  }

  config.release_trace_pages = trace_stream_release;
  std::unique_ptr<sim::ExperimentRunner> runner;
  if (trace_in.empty()) {
    CASCACHE_ASSIGN_OR_RETURN(runner, sim::ExperimentRunner::Create(config));
  } else {
    CASCACHE_ASSIGN_OR_RETURN(
        runner, sim::ExperimentRunner::CreateFromTrace(config, trace_in));
    const trace::WorkloadView loaded = runner->view();
    const char* provenance =
        runner->mapped_trace() == nullptr ? "v1, in RAM"
        : loaded.catalog->procedural()    ? "v3, mmap, procedural catalog"
                                          : "v2, mmap";
    std::fprintf(stderr, "loaded trace %s: %zu requests, %u objects (%s)\n",
                 trace_in.c_str(), loaded.requests.size(),
                 loaded.catalog->num_objects(), provenance);
  }
  if (!save_trace.empty()) {
    if (!trace_in.empty()) {
      return util::Status::InvalidArgument(
          "--save-trace requires a generated workload (drop --trace-in)");
    }
    CASCACHE_RETURN_IF_ERROR(
        trace::WriteTrace(runner->workload(), save_trace));
    std::fprintf(stderr, "wrote trace to %s\n", save_trace.c_str());
  }

  // Generated and replayed traces both go through the sweep engine,
  // which runs the cells concurrently (--jobs); a mapped trace is one
  // shared read-only mapping replayed in place by every cell.
  std::vector<sim::RunResult> sweep_results;
  CASCACHE_ASSIGN_OR_RETURN(sweep_results, runner->RunAll());

  util::TablePrinter table({"cache", "scheme", "latency(s)", "resp(s/MB)",
                            "byte hit", "hops", "traffic(B*hop)",
                            "load(B/req)", "stale"});
  for (const sim::RunResult& r : sweep_results) {
    const sim::MetricsSummary& m = r.metrics;
    char cache_label[32];
    std::snprintf(cache_label, sizeof(cache_label), "%.2f%%",
                  r.cache_fraction * 100);
    table.AddRow({cache_label, r.scheme,
                  util::TablePrinter::Fmt(m.avg_latency, 4),
                  util::TablePrinter::Fmt(m.avg_response_ratio, 4),
                  util::TablePrinter::Fmt(m.byte_hit_ratio, 4),
                  util::TablePrinter::Fmt(m.avg_hops, 4),
                  util::TablePrinter::Fmt(m.avg_traffic_byte_hops, 4),
                  util::TablePrinter::Fmt(m.avg_load_bytes, 4),
                  util::TablePrinter::Fmt(m.stale_hit_ratio, 3)});
  }
  table.Print();

  if (!results_csv.empty()) {
    CASCACHE_RETURN_IF_ERROR(sim::WriteResultsCsv(sweep_results, results_csv));
    std::fprintf(stderr, "wrote sweep CSV to %s\n", results_csv.c_str());
  }
  if (!per_node_csv.empty()) {
    CASCACHE_RETURN_IF_ERROR(
        sim::WritePerNodeCsv(sweep_results, per_node_csv));
    std::fprintf(stderr, "wrote per-node CSV to %s\n", per_node_csv.c_str());
  }
  if (!trace_jsonl.empty()) {
    CASCACHE_RETURN_IF_ERROR(sim::WriteTraceJsonl(sweep_results, trace_jsonl));
    std::fprintf(stderr, "wrote event trace to %s\n", trace_jsonl.c_str());
  }
  if (std::getenv("CASCACHE_PRINT_RSS") != nullptr) {
    std::fprintf(stderr, "peak_rss_kb=%ld\n", PeakRssKb());
  }
  return util::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Status status = RunMain(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
  return 0;
}
