# End-to-end trace tooling test, run via `cmake -P` so it works on any
# CI runner without a shell:
#   1. cascache_sim --trace-out streams a v2 trace to disk
#   2. cascache_trace summarize reports its counts
#   3. cascache_trace export-csv dumps it as text
#   4. cascache_trace convert rebuilds a v2 trace from that text
#   5. the two summaries must agree on requests / objects / bytes
#   6. cascache_sim --trace-in replays the converted trace
#
# Expects -DSIM=, -DTRACE=, -DWORK_DIR=.

foreach(var SIM TRACE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(generated "${WORK_DIR}/generated.cctr")
set(csv "${WORK_DIR}/generated.csv")
set(converted "${WORK_DIR}/converted.cctr")

function(run_checked)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()

# Pull "requests: N / objects referenced: N / bytes requested: N" out
# of a summarize report so the two traces can be compared field by
# field. The converted catalog keeps only referenced objects (dense
# renumbering), so the referenced count is the invariant to compare.
function(summarize_counts trace_file prefix)
  run_checked("${TRACE}" summarize "${trace_file}")
  foreach(pair "requests;requests:" "objects;objects referenced:"
               "bytes;bytes requested:")
    list(GET pair 0 name)
    list(GET pair 1 label)
    string(REGEX MATCH "${label} *([0-9]+)" _ "${last_output}")
    if("${CMAKE_MATCH_1}" STREQUAL "")
      message(FATAL_ERROR "no '${label}' line in summary of ${trace_file}:"
                          "\n${last_output}")
    endif()
    set(${prefix}_${name} "${CMAKE_MATCH_1}" PARENT_SCOPE)
  endforeach()
endfunction()

run_checked("${SIM}" --requests=20000 --objects=2000 --clients=100
            --servers=20 "--trace-out=${generated}")
summarize_counts("${generated}" gen)
if(NOT gen_requests EQUAL 20000)
  message(FATAL_ERROR "generated trace has ${gen_requests} requests, "
                      "expected 20000")
endif()

run_checked("${TRACE}" export-csv "${generated}" "${csv}")
run_checked("${TRACE}" convert "${csv}" "${converted}")
summarize_counts("${converted}" conv)

foreach(field requests objects bytes)
  if(NOT gen_${field} EQUAL conv_${field})
    message(FATAL_ERROR "convert changed ${field}: "
                        "${gen_${field}} -> ${conv_${field}}")
  endif()
endforeach()

run_checked("${SIM}" "--trace-in=${converted}" --schemes=lru --cache=0.01)
message(STATUS "trace roundtrip OK: ${gen_requests} requests preserved")
