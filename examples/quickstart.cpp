// Quickstart: the two layers of the cascache API.
//
//  1. The placement optimizer by itself: given per-cache frequencies, miss
//     penalties and eviction cost losses along a delivery path, compute
//     the optimal set of caches for the object (paper §2.2).
//  2. A complete (tiny) trace-driven simulation comparing the coordinated
//     scheme against LRU on a 3-level cache hierarchy.

#include <cstdio>

#include "core/placement.h"
#include "schemes/scheme.h"
#include "sim/experiment.h"

namespace {

void RunPlacementDemo() {
  std::printf("== 1. Optimal placement on a delivery path ==\n\n");

  // A path A_0 (server) -> A_1 ... A_4 (requesting cache). Frequencies
  // fall toward the client (downstream caches see a subset of requests);
  // miss penalties grow with distance from the server.
  cascache::core::PlacementInput input;
  input.f = {8.0, 5.0, 3.0, 2.0};   // requests/sec observed at A_1..A_4
  input.m = {1.0, 2.5, 4.0, 6.0};   // cost to the nearest upstream copy
  input.l = {6.0, 2.0, 9.0, 1.5};   // eviction cost loss at each cache

  CASCACHE_CHECK_OK(cascache::core::ValidatePlacementInput(input));
  const cascache::core::PlacementResult result =
      cascache::core::SolvePlacementDP(input);

  std::printf("caches on path:   A_1    A_2    A_3    A_4\n");
  std::printf("frequency f:    %5.1f  %5.1f  %5.1f  %5.1f\n", input.f[0],
              input.f[1], input.f[2], input.f[3]);
  std::printf("miss penalty m: %5.1f  %5.1f  %5.1f  %5.1f\n", input.m[0],
              input.m[1], input.m[2], input.m[3]);
  std::printf("cost loss l:    %5.1f  %5.1f  %5.1f  %5.1f\n\n", input.l[0],
              input.l[1], input.l[2], input.l[3]);

  std::printf("optimal caches: ");
  for (int v : result.selected) std::printf("A_%d ", v + 1);
  std::printf("\ntotal access-cost reduction: %.2f per second\n\n",
              result.gain);
}

void RunSimulationDemo() {
  std::printf("== 2. Coordinated caching vs LRU on a small hierarchy ==\n\n");

  cascache::sim::ExperimentConfig config;
  config.network.architecture = cascache::sim::Architecture::kHierarchical;
  config.network.tree.depth = 3;
  config.network.tree.fanout = 3;
  config.workload.num_objects = 5'000;
  config.workload.num_requests = 120'000;
  config.workload.num_clients = 200;
  config.workload.num_servers = 50;
  config.cache_fractions = {0.01};
  config.schemes = {
      {.kind = cascache::schemes::SchemeKind::kLru},
      {.kind = cascache::schemes::SchemeKind::kCoordinated},
  };

  auto runner_or = cascache::sim::ExperimentRunner::Create(config);
  CASCACHE_CHECK_OK(runner_or.status());
  auto results_or = (*runner_or)->RunAll();
  CASCACHE_CHECK_OK(results_or.status());

  for (const cascache::sim::RunResult& run : *results_or) {
    std::printf("%-12s cache=%.0f%%  latency=%.4fs  byte-hit=%.3f  "
                "hops=%.2f\n",
                run.scheme.c_str(), run.cache_fraction * 100,
                run.metrics.avg_latency, run.metrics.byte_hit_ratio,
                run.metrics.avg_hops);
  }
}

}  // namespace

int main() {
  RunPlacementDemo();
  RunSimulationDemo();
  return 0;
}
