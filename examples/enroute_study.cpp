// En-route caching study: builds the paper's Table-1-style Tiers topology,
// generates a synthetic Boeing-like workload, and compares all four
// caching schemes (LRU, MODULO, LNC-R, Coordinated) at a configurable
// relative cache size — a command-line version of one column of Figures
// 6-8.
//
// Usage: enroute_study [relative_cache_size] [num_requests]
//   e.g. enroute_study 0.01 200000

#include <cstdio>
#include <cstdlib>

#include "schemes/coordinated_scheme.h"
#include "sim/experiment.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cascache;

  const double cache_fraction = argc > 1 ? std::atof(argv[1]) : 0.01;
  const uint64_t num_requests =
      argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 200'000;
  if (cache_fraction <= 0.0 || cache_fraction > 1.0 || num_requests == 0) {
    std::fprintf(stderr,
                 "usage: %s [relative_cache_size (0,1]] [num_requests]\n",
                 argv[0]);
    return 1;
  }

  sim::ExperimentConfig config;
  config.network.architecture = sim::Architecture::kEnRoute;
  config.workload.num_objects = 10'000;
  config.workload.num_requests = num_requests;
  config.workload.num_clients = 1'000;
  config.workload.num_servers = 100;
  config.cache_fractions = {cache_fraction};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kModulo, .modulo_radius = 4},
                    {.kind = schemes::SchemeKind::kLncr},
                    {.kind = schemes::SchemeKind::kCoordinated}};

  std::printf("en-route study: cache size %.2f%%, %llu requests\n\n",
              cache_fraction * 100,
              static_cast<unsigned long long>(num_requests));

  auto runner_or = sim::ExperimentRunner::Create(config);
  CASCACHE_CHECK_OK(runner_or.status());
  auto results_or = (*runner_or)->RunAll();
  CASCACHE_CHECK_OK(results_or.status());

  util::TablePrinter table({"scheme", "latency(s)", "resp(s/MB)", "byte hit",
                            "hops", "traffic(B*hop)", "load(B/req)"});
  for (const sim::RunResult& r : *results_or) {
    table.AddRow({r.scheme, util::TablePrinter::Fmt(r.metrics.avg_latency, 4),
                  util::TablePrinter::Fmt(r.metrics.avg_response_ratio, 4),
                  util::TablePrinter::Fmt(r.metrics.byte_hit_ratio, 4),
                  util::TablePrinter::Fmt(r.metrics.avg_hops, 4),
                  util::TablePrinter::Fmt(r.metrics.avg_traffic_byte_hops, 4),
                  util::TablePrinter::Fmt(r.metrics.avg_load_bytes, 4)});
  }
  table.Print();
  return 0;
}
