// Coherency study: the paper assumes cached objects stay fresh via "a
// cache coherency protocol if necessary" (§2). This example makes a
// fraction of objects mutable and compares how coordinated caching fares
// under no protocol (stale service), TTL expiry, and idealized
// server-driven invalidation — including the protocol's own overhead
// (extra origin fetches).
//
// Usage: coherency_study [mutable_fraction] [mean_update_period_seconds]

#include <cstdio>
#include <cstdlib>

#include "schemes/coordinated_scheme.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cascache;

  const double mutable_fraction = argc > 1 ? std::atof(argv[1]) : 0.2;
  const double update_period = argc > 2 ? std::atof(argv[2]) : 600.0;
  if (mutable_fraction < 0.0 || mutable_fraction > 1.0 ||
      update_period <= 0.0) {
    std::fprintf(stderr, "usage: %s [mutable in [0,1]] [period > 0]\n",
                 argv[0]);
    return 1;
  }

  trace::WorkloadParams wl;
  wl.num_objects = 10'000;
  wl.num_requests = 200'000;
  wl.num_clients = 500;
  wl.num_servers = 100;
  auto workload_or = trace::GenerateWorkload(wl);
  CASCACHE_CHECK_OK(workload_or.status());

  sim::NetworkParams net_params;
  net_params.architecture = sim::Architecture::kEnRoute;
  auto net_or = sim::Network::Build(net_params, &workload_or->catalog);
  CASCACHE_CHECK_OK(net_or.status());

  std::printf("coherency study: %.0f%% mutable objects, mean update every "
              "%.0f s (trace spans %.0f s)\n\n",
              mutable_fraction * 100, update_period,
              workload_or->Duration());

  util::TablePrinter table({"protocol", "latency(s)", "byte hit",
                            "stale hits", "expired", "invalidated"});
  for (sim::CoherencyProtocol protocol :
       {sim::CoherencyProtocol::kNone, sim::CoherencyProtocol::kTtl,
        sim::CoherencyProtocol::kInvalidation}) {
    schemes::CoordinatedScheme scheme;
    sim::SimOptions options;
    options.coherency.protocol = protocol;
    options.coherency.mutable_fraction = mutable_fraction;
    options.coherency.mean_update_period = update_period;
    options.coherency.ttl = update_period / 2.0;
    sim::Simulator simulator(net_or->get(), &scheme, options);
    CASCACHE_CHECK_OK(simulator.Run(
        *workload_or, workload_or->catalog.total_bytes() / 100));
    const sim::MetricsSummary m = simulator.metrics().Summary();
    table.AddRow({sim::CoherencyProtocolName(protocol),
                  util::TablePrinter::Fmt(m.avg_latency, 4),
                  util::TablePrinter::Fmt(m.byte_hit_ratio, 4),
                  util::TablePrinter::Fmt(m.stale_hit_ratio, 4),
                  std::to_string(m.copies_expired),
                  std::to_string(m.copies_invalidated)});
  }
  table.Print();
  std::printf(
      "\nReading: 'none' serves stale bytes (stale-hit column); TTL and\n"
      "invalidation keep contents fresh at the price of extra origin\n"
      "fetches (lower byte hit, higher latency). The gap quantifies what\n"
      "the paper's freshness assumption abstracts away.\n");
  return 0;
}
