// Hierarchical caching study: drives the coordinated scheme on a proxy
// tree and inspects *where* object copies end up — demonstrating the
// placement behavior the paper's Figure 5/Section 4.2 discuss: popular
// objects sink toward the leaves, unpopular ones are held high up or not
// at all.
//
// Usage: hierarchy_study [depth] [fanout]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "schemes/coordinated_scheme.h"
#include "sim/simulator.h"
#include "topology/tree.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace cascache;

  const int depth = argc > 1 ? std::atoi(argv[1]) : 4;
  const int fanout = argc > 2 ? std::atoi(argv[2]) : 3;
  if (depth < 2 || fanout < 1) {
    std::fprintf(stderr, "usage: %s [depth >= 2] [fanout >= 1]\n", argv[0]);
    return 1;
  }

  trace::WorkloadParams wl;
  wl.num_objects = 5'000;
  wl.num_requests = 300'000;
  wl.num_clients = 500;
  wl.num_servers = 50;
  auto workload_or = trace::GenerateWorkload(wl);
  CASCACHE_CHECK_OK(workload_or.status());

  sim::NetworkParams net_params;
  net_params.architecture = sim::Architecture::kHierarchical;
  net_params.tree.depth = depth;
  net_params.tree.fanout = fanout;
  auto net_or = sim::Network::Build(net_params, &workload_or->catalog);
  CASCACHE_CHECK_OK(net_or.status());
  sim::Network& net = **net_or;

  schemes::CoordinatedScheme scheme;
  sim::Simulator simulator(&net, &scheme);
  const uint64_t capacity = workload_or->catalog.total_bytes() / 50;  // 2%.
  CASCACHE_CHECK_OK(simulator.Run(*workload_or, capacity));

  std::printf("hierarchical coordinated caching, depth=%d fanout=%d, "
              "2%% cache per node\n\n",
              depth, fanout);
  std::printf("%s\n\n", simulator.metrics().Summary().ToString().c_str());

  // Where do copies live? Aggregate cache occupancy per tree level.
  auto tree_or = topology::BuildTree(net_params.tree);
  CASCACHE_CHECK_OK(tree_or.status());
  std::vector<uint64_t> bytes_per_level(static_cast<size_t>(depth), 0);
  std::vector<uint64_t> objects_per_level(static_cast<size_t>(depth), 0);
  std::vector<int> nodes_per_level(static_cast<size_t>(depth), 0);
  for (topology::NodeId v = 0; v < net.num_nodes(); ++v) {
    const int level = tree_or->level[static_cast<size_t>(v)];
    bytes_per_level[level] += net.node(v)->used_bytes();
    objects_per_level[level] += net.node(v)->num_cached_objects();
    ++nodes_per_level[level];
  }
  std::printf("copies by tree level (root = level %d):\n", depth - 1);
  for (int level = depth - 1; level >= 0; --level) {
    std::printf(
        "  level %d: %3d caches, %8llu objects, mean fill %5.1f%%\n", level,
        nodes_per_level[level],
        static_cast<unsigned long long>(objects_per_level[level]),
        100.0 * static_cast<double>(bytes_per_level[level]) /
            (static_cast<double>(nodes_per_level[level]) *
             static_cast<double>(capacity)));
  }

  std::printf("\ncoordinated-scheme decision statistics:\n");
  const auto& stats = scheme.stats();
  std::printf("  requests: %llu, DP runs: %llu, mean candidates/run: %.2f\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.dp_runs),
              stats.dp_runs ? static_cast<double>(stats.candidates) /
                                  static_cast<double>(stats.dp_runs)
                            : 0.0);
  std::printf("  placements: %llu (%.3f per request), total gain: %.1f\n",
              static_cast<unsigned long long>(stats.placements),
              static_cast<double>(stats.placements) /
                  static_cast<double>(stats.requests),
              stats.total_gain);
  return 0;
}
