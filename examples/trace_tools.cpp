// Trace tooling: generate a synthetic Boeing-like trace, save it in the
// cascache binary format, reload it, and print its statistics. Use this
// as the template for converting a real proxy log into a cascache trace.
//
// Usage: trace_tools [output.cctr]

#include <cstdio>
#include <cstdlib>

#include "trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace cascache;

  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/cascache_demo.cctr");

  trace::WorkloadParams params;
  params.num_objects = 20'000;
  params.num_requests = 100'000;
  params.num_clients = 2'000;
  params.num_servers = 200;
  params.zipf_theta = 0.8;

  std::printf("generating synthetic trace (%u objects, %llu requests)...\n",
              params.num_objects,
              static_cast<unsigned long long>(params.num_requests));
  auto workload_or = trace::GenerateWorkload(params);
  CASCACHE_CHECK_OK(workload_or.status());

  std::printf("writing %s ...\n", path.c_str());
  CASCACHE_CHECK_OK(trace::WriteTrace(*workload_or, path));

  std::printf("reading it back ...\n");
  auto read_or = trace::ReadTrace(path);
  CASCACHE_CHECK_OK(read_or.status());

  const trace::TraceStats stats = trace::ComputeTraceStats(*read_or);
  std::printf("\ntrace statistics:\n");
  std::printf("  requests:            %llu\n",
              static_cast<unsigned long long>(stats.num_requests));
  std::printf("  objects (referenced): %u (%u)\n", stats.num_objects,
              stats.num_objects_referenced);
  std::printf("  active clients:      %u\n", stats.num_clients_active);
  std::printf("  duration:            %.1f s\n", stats.duration_seconds);
  std::printf("  bytes requested:     %llu\n",
              static_cast<unsigned long long>(stats.total_bytes_requested));
  std::printf("  mean object size:    %.0f B\n", stats.mean_object_size);
  std::printf("  Zipf theta estimate: %.3f (configured %.3f)\n",
              stats.estimated_zipf_theta, params.zipf_theta);
  std::printf("  top-10%% object share: %.1f%% of requests\n",
              stats.top10pct_request_share * 100);
  return 0;
}
